open Th_sim
module Obj_ = Th_objmodel.Heap_object
module Roots = Th_objmodel.Roots
module Card_table = Th_minijvm.Card_table
module H1_heap = Th_minijvm.H1_heap
module H2 = Th_core.H2
module Policy = Th_policy.Policy

(* ------------------------------------------------------------------ *)
(* Trace spans. Span-end events carry the collector's own measured
   duration ([Clock.sub] category deltas) rather than leaving readers to
   difference the begin/end timestamps: now_ns is a four-category sum, so
   a wall delta can differ from the category delta in the last float
   bits, and {!Th_trace.Rollup} must reproduce {!Gc_stats} exactly.      *)

let trace_span_begin (rt : Rt.t) ~name =
  match Clock.tracer rt.Rt.clock with
  | None -> ()
  | Some tr ->
      Th_trace.Recorder.span_begin tr
        ~ts:(Clock.now_ns rt.Rt.clock)
        ~cat:"gc" ~name ()

let trace_span_end (rt : Rt.t) ~name args =
  match Clock.tracer rt.Rt.clock with
  | None -> ()
  | Some tr ->
      Th_trace.Recorder.span_end tr
        ~ts:(Clock.now_ns rt.Rt.clock)
        ~cat:"gc" ~name ~args ()

let trace_instant (rt : Rt.t) ~cat ~name args =
  match Clock.tracer rt.Rt.clock with
  | None -> ()
  | Some tr ->
      Th_trace.Recorder.instant tr
        ~ts:(Clock.now_ns rt.Rt.clock)
        ~cat ~name ~args ()

(* Feed the placement policy. Observations are host-side bookkeeping
   only: no simulated time is charged and no trace events are emitted,
   so a policy that ignores them (the default) leaves every run
   bit-identical to the pre-policy collector. *)
let observe (rt : Rt.t) ev = rt.Rt.policy.Policy.observe ev

(* A labelled object died (swept in H1, or its H2 region was
   reclaimed): tell the policy, so lifetime profiles can close the
   tag-to-death interval. Unlabelled objects are invisible to
   placement and not reported. *)
let note_death (rt : Rt.t) (o : Obj_.t) =
  if o.Obj_.label >= 0 then
    observe rt
      (Policy.Death
         {
           label = o.Obj_.label;
           site = o.Obj_.site;
           bytes = Obj_.total_size o;
         })

(* ------------------------------------------------------------------ *)
(* Minor GC                                                            *)

let has_young_ref o =
  let found = ref false in
  Obj_.iter_refs (fun c -> if Obj_.is_young c then found := true) o;
  !found

let minor_gc (rt : Rt.t) =
  let heap = rt.Rt.heap in
  let costs = rt.Rt.costs in
  Rt.safepoint rt Rt.Before_minor;
  let t0 = Clock.breakdown rt.Rt.clock in
  trace_span_begin rt ~name:"minor_gc";
  rt.Rt.in_gc <- true;
  rt.Rt.mark_epoch <- rt.Rt.mark_epoch + 1;
  let epoch = rt.Rt.mark_epoch in
  Rt.charge rt Clock.Minor_gc costs.Costs.gc_pause_overhead_ns;
  let worklist = Stack.create () in
  let live_young = Vec.create () in
  let push_young (o : Obj_.t) =
    if Obj_.is_young o && o.Obj_.mark <> epoch then begin
      o.Obj_.mark <- epoch;
      Vec.push live_young o;
      Stack.push o worklist
    end
  in
  (* Task 1: scan roots. Stack and static slots reference objects
     directly; the fields of non-young root objects are scanned as part of
     root processing. *)
  Roots.iter
    (fun o ->
      Rt.charge_minor rt costs.Costs.trace_ref_ns;
      push_young o;
      if not (Obj_.is_young o) then
        Obj_.iter_refs
          (fun c ->
            Rt.charge_minor rt costs.Costs.trace_ref_ns;
            push_young c)
          o)
    rt.Rt.roots;
  (* Task 2: scan H1 dirty cards for old-to-young references. The
     simulated cost (checking every card entry, then examining each
     object of a dirty card) is identical in both modes; the modes differ
     only in how much *host* work finds those objects. Card buckets visit
     dirty cards' remembered-set buckets directly — O(dirty objects) —
     where the linear oracle sweeps the whole old generation. Both visit
     the same objects in the same (address) order. *)
  Rt.charge_minor rt
    (float_of_int (Card_table.num_cards heap.H1_heap.cards)
    *. costs.Costs.card_scan_ns);
  let scanned_cards : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let scan_card_object (o : Obj_.t) =
    Rt.charge_minor rt
      (costs.Costs.card_obj_scan_ns *. rt.Rt.profile.Cost_profile.old_mult);
    Obj_.iter_refs
      (fun c ->
        Rt.charge_minor rt costs.Costs.trace_ref_ns;
        push_young c)
      o
  in
  (match rt.Rt.rset_mode with
  | Rt.Card_buckets ->
      Card_table.iter_dirty_buckets heap.H1_heap.cards (fun card bucket ->
          Hashtbl.replace scanned_cards card ();
          Vec.iter scan_card_object bucket)
  | Rt.Linear_scan ->
      Vec.iter
        (fun (o : Obj_.t) ->
          let card = Card_table.card_of_addr heap.H1_heap.cards o.Obj_.addr in
          if Card_table.is_dirty heap.H1_heap.cards ~card then begin
            Hashtbl.replace scanned_cards card ();
            scan_card_object o
          end)
        heap.H1_heap.old_objs);
  (* Task 3 (TeraHeap): scan the H2 card table; backward references keep
     H1 young objects alive and must be adjusted after the copy. *)
  (match rt.Rt.h2 with
  | None -> ()
  | Some h2 ->
      H2.scan_cards_minor h2 ~on_object:(fun o ->
          Obj_.iter_refs
            (fun c ->
              Rt.charge_minor rt costs.Costs.trace_ref_ns;
              push_young c)
            o));
  (* Task 4: transitive trace within the young generation. The reference
     range check fences the trace from crossing into H2. *)
  while not (Stack.is_empty worklist) do
    let o = Stack.pop worklist in
    Rt.charge_minor rt (costs.Costs.mark_obj_ns *. Rt.gen_mult rt o);
    Obj_.iter_refs
      (fun c ->
        Rt.charge_minor rt costs.Costs.trace_ref_ns;
        push_young c)
      o
  done;
  (* Task 5: copy live young objects; promote mature or overflowing ones. *)
  let needs_major = ref false in
  let promoted = Vec.create () in
  Vec.iter
    (fun (o : Obj_.t) ->
      o.Obj_.age <- o.Obj_.age + 1;
      let bytes = Obj_.total_size o in
      Rt.charge_minor rt
        (float_of_int bytes *. costs.Costs.copy_byte_ns
        *. rt.Rt.profile.Cost_profile.young_mult);
      let must_promote =
        o.Obj_.age >= heap.H1_heap.tenure_threshold
        || heap.H1_heap.survivor_used + bytes > heap.H1_heap.survivor_capacity
      in
      if must_promote then begin
        match H1_heap.old_alloc_addr heap bytes with
        | Some addr ->
            H1_heap.promote heap o ~addr;
            Vec.push promoted o
        | None ->
            (* Promotion failure: keep the object in the survivor space
               (overflow) and request a full collection. *)
            needs_major := true;
            H1_heap.to_survivor heap o
      end
      else H1_heap.to_survivor heap o)
    live_young;
  (* Sweep dead young objects and rebuild the space vectors. *)
  Vec.iter
    (fun (o : Obj_.t) ->
      if o.Obj_.loc = Obj_.Eden then begin
        note_death rt o;
        H1_heap.free_object heap o
      end)
    heap.H1_heap.eden;
  Vec.clear heap.H1_heap.eden;
  Vec.filter_in_place
    (fun (o : Obj_.t) ->
      if o.Obj_.loc = Obj_.Survivor && o.Obj_.mark <> epoch then begin
        note_death rt o;
        H1_heap.free_object heap o;
        false
      end
      else o.Obj_.loc = Obj_.Survivor)
    heap.H1_heap.survivor;
  (* Recompute the H1 cards that were scanned: clean unless some old
     object in the card still references a young object. Promoted objects
     may now hold young references, so their cards become dirty. *)
  let still_dirty : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  (match rt.Rt.rset_mode with
  | Rt.Card_buckets ->
      (* Objects promoted in Task 5 are already registered, so a scanned
         card's bucket holds exactly the old objects the linear sweep
         would attribute to it. Iteration order-insensitive: each card's
         still-dirty status is computed independently.
         th-lint: allow hashtbl-order *)
      Hashtbl.iter
        (fun card () ->
          let found = ref false in
          Card_table.iter_card_objects heap.H1_heap.cards ~card (fun o ->
              if (not !found) && has_young_ref o then found := true);
          if !found then Hashtbl.replace still_dirty card ())
        scanned_cards
  | Rt.Linear_scan ->
      Vec.iter
        (fun (o : Obj_.t) ->
          let card = Card_table.card_of_addr heap.H1_heap.cards o.Obj_.addr in
          if Hashtbl.mem scanned_cards card && has_young_ref o then
            Hashtbl.replace still_dirty card ())
        heap.H1_heap.old_objs);
  (* Order-insensitive: cards are cleared independently of each other.
     th-lint: allow hashtbl-order *)
  Hashtbl.iter
    (fun card () ->
      if not (Hashtbl.mem still_dirty card) then
        Card_table.clear_card heap.H1_heap.cards ~card)
    scanned_cards;
  Vec.iter
    (fun (o : Obj_.t) ->
      if has_young_ref o then
        Card_table.mark_dirty heap.H1_heap.cards ~addr:o.Obj_.addr)
    promoted;
  (* Adjust H2 card states now that targets have moved (§3.4). *)
  (match rt.Rt.h2 with
  | None -> ()
  | Some h2 -> H2.recompute_card_states h2 ~major:false);
  rt.Rt.in_gc <- false;
  let d = Clock.sub (Clock.breakdown rt.Rt.clock) t0 in
  Gc_stats.record rt.Rt.stats
    (Gc_stats.Minor
       { at_ns = Clock.now_ns rt.Rt.clock; duration_ns = d.Clock.minor_gc_ns });
  Gc_stats.record_occupancy rt.Rt.stats ~at_ns:(Clock.now_ns rt.Rt.clock)
    (H1_heap.old_occupancy heap);
  trace_span_end rt ~name:"minor_gc"
    [ ("dur_ns", Th_trace.Event.Float d.Clock.minor_gc_ns) ];
  Rt.safepoint rt Rt.After_minor;
  !needs_major

(* ------------------------------------------------------------------ *)
(* Major GC                                                            *)

(* Work that is single-threaded under PS (OpenJDK8 old-generation
   collection) but parallel under the JDK11/G1 variants. *)
let charge_major rt ns =
  let threads = Rt.major_threads rt in
  (* G1 performs most of its marking concurrently with the mutator; only
     about half of the work lands in a pause (remark/cleanup). *)
  let ns =
    match rt.Rt.collector with Rt.G1 -> ns *. 0.5 | Rt.Ps | Rt.Ps_jdk11 -> ns
  in
  Rt.charge rt Clock.Major_gc (Costs.parallel rt.Rt.costs ~threads ns)

let g1_skip_copy rt (o : Obj_.t) =
  (* G1 never evacuates humongous objects; mixed collections also copy
     only a subset of regions. The subset factor is applied at the charge
     site; humongous objects are skipped entirely. *)
  rt.Rt.collector = Rt.G1
  && o.Obj_.kind = Obj_.Array_data
  && Obj_.total_size o > rt.Rt.g1_region_size / 2

let g1_copy_factor rt =
  match rt.Rt.collector with Rt.G1 -> 0.35 | Rt.Ps | Rt.Ps_jdk11 -> 1.0

let major_gc (rt : Rt.t) =
  let heap = rt.Rt.heap in
  let costs = rt.Rt.costs in
  Rt.safepoint rt Rt.Before_major;
  rt.Rt.in_gc <- true;
  rt.Rt.mark_epoch <- rt.Rt.mark_epoch + 1;
  let epoch = rt.Rt.mark_epoch in
  Rt.charge rt Clock.Major_gc costs.Costs.gc_pause_overhead_ns;
  (* Escape hatch: if the old generation is already past the high
     threshold when this collection starts (a large allocation burst since
     the last cycle), escalate to a pressure move now rather than risk an
     OOM before the "next major GC" the paper's policy nominally uses. *)
  (match rt.Rt.h2 with
  | Some h2 when rt.Rt.pressure = Rt.No_pressure ->
      if H1_heap.old_occupancy heap > H2.high_threshold h2 then
        rt.Rt.pressure <-
          (match H2.low_threshold h2 with
          | Some _ -> Rt.Move_until_low
          | None -> Rt.Move_all_tagged)
  | Some _ | None -> ());
  let t0 = Clock.breakdown rt.Rt.clock in
  trace_span_begin rt ~name:"major_gc";
  let phase_delta prev =
    let d = Clock.sub (Clock.breakdown rt.Rt.clock) prev in
    (d.Clock.major_gc_ns, Clock.breakdown rt.Rt.clock)
  in
  trace_span_begin rt ~name:"marking";

  (* --- Phase 1: marking ------------------------------------------- *)
  (match rt.Rt.h2 with None -> () | Some h2 -> H2.clear_live_bits h2);
  let worklist = Stack.create () in
  let live = Vec.create () in
  let backward_refs = ref 0 in
  let push (o : Obj_.t) =
    match o.Obj_.loc with
    | Obj_.In_h2 ->
        (* Forward reference (H1 to H2): fence, set the region live bit. *)
        (match rt.Rt.h2 with
        | Some h2 -> H2.mark_live_from_h1 h2 o
        | None ->
            Rt.invalid_heap_state ~object_id:o.Obj_.id
              ~phase:"major marking: In_h2 object without an H2 heap")
    | Obj_.Freed -> ()
    | Obj_.Eden | Obj_.Survivor | Obj_.Old ->
        if o.Obj_.mark <> epoch then begin
          o.Obj_.mark <- epoch;
          Vec.push live o;
          Stack.push o worklist
        end
  in
  (* Mark H1 objects referenced by H2 as live (backward references). *)
  (match rt.Rt.h2 with
  | None -> ()
  | Some h2 ->
      H2.scan_cards_major h2 ~on_object:(fun o ->
          Obj_.iter_refs
            (fun c ->
              if Obj_.is_in_h1 c then begin
                incr backward_refs;
                charge_major rt costs.Costs.trace_ref_ns;
                push c
              end)
            o));
  Roots.iter
    (fun o ->
      charge_major rt costs.Costs.trace_ref_ns;
      push o)
    rt.Rt.roots;
  while not (Stack.is_empty worklist) do
    let o = Stack.pop worklist in
    charge_major rt (costs.Costs.mark_obj_ns *. Rt.gen_mult rt o);
    Obj_.iter_refs
      (fun c ->
        charge_major rt (costs.Costs.trace_ref_ns *. Rt.gen_mult rt o);
        push c)
      o
  done;
  let live_bytes =
    Vec.fold_left (fun acc o -> acc + Obj_.total_size o) 0 live
  in
  (* TeraHeap marking extras: identify labelled roots, compute transitive
     closures, and free dead regions (§4). *)
  let move_list = Vec.create () in
  let regions_freed_now = ref 0 in
  (match rt.Rt.h2 with
  | None -> ()
  | Some h2 ->
      observe rt (Policy.Major_start { epoch });
      rt.Rt.closure_epoch <- rt.Rt.closure_epoch + 1;
      let cepoch = rt.Rt.closure_epoch in
      let cfg = H2.config h2 in
      (* After a full collection every live H1 object sits in the old
         generation, so thresholds are fractions of old-gen capacity. *)
      let old_capacity = heap.H1_heap.old_capacity in
      (* Pressure-forced moves of objects whose h2_move hint has not been
         seen yet stop at a budget: the low threshold when configured,
         otherwise the high threshold — except with hints disabled
         entirely ("NH"), where everything marked moves (§3.2, §7.2). *)
      let unadvised_target =
        match rt.Rt.pressure with
        | Rt.No_pressure -> None
        | Rt.Move_until_low -> (
            match H2.low_threshold h2 with
            | Some low -> Some (Some low)
            | None -> Some None)
        | Rt.Move_all_tagged ->
            if cfg.H2.use_move_hint then Some (Some (H2.high_threshold h2))
            else Some None
      in
      let moved_budget_exhausted moved =
        match unadvised_target with
        | None | Some None -> false
        | Some (Some target) ->
            float_of_int (live_bytes - moved)
            <= target *. float_of_int old_capacity
      in
      let moved = ref 0 in
      (* Breadth-first so that the H2 placement order matches the order
         frameworks later stream the group in (root, then elements).
         [group] is the policy's region-bucket key, carried alongside
         each candidate into precompaction; the object's site follows
         its root so lifetime profiles attribute closure members to the
         tag site. *)
      let closure_of (root : Obj_.t) label group =
        let site = root.Obj_.site in
        let queue = Queue.create () in
        Queue.push root queue;
        while not (Queue.is_empty queue) do
          let o = Queue.pop queue in
          if
            o.Obj_.closure_mark <> cepoch
            && Obj_.is_in_h1 o
            && o.Obj_.mark = epoch
            && not (Obj_.excluded_from_closure o)
          then begin
            o.Obj_.closure_mark <- cepoch;
            o.Obj_.label <- label;
            o.Obj_.site <- site;
            moved := !moved + Obj_.total_size o;
            Vec.push move_list (o, group);
            Obj_.iter_refs
              (fun c ->
                charge_major rt costs.Costs.trace_ref_ns;
                Queue.push c queue)
              o
          end
        done
      in
      (* The placement policy picks which tagged roots move and in what
         order; the collector keeps every validity guard (label, mark,
         closure-mark) and the pressure budget, so a policy chooses
         among safe moves but cannot invent unsafe ones. [Advised]
         picks move unconditionally (their groups are immutable);
         [Budgeted] picks — possibly still mutable, so moving them
         costs device read-modify-writes later — stop at the budget.
         No explicit un-tagging: once moved, a root's location becomes
         [In_h2] and the tagged list self-cleans on its next traversal
         (a per-root removal here would be quadratic). *)
      let tagged = H2.tagged_roots h2 in
      (* The resilience gate is sampled exactly once per cycle: an open
         circuit breaker suppresses the whole move phase, leaving every
         tagged root in H1 to be retried (or serialized off-heap by the
         driver) later. Region reclamation below still runs — freeing
         dead H2 regions needs no new device writes. *)
      if Rt.h2_moves_allowed rt then begin
        let ctx =
          {
            Policy.epoch;
            pressure =
              (match rt.Rt.pressure with
              | Rt.No_pressure -> Policy.No_pressure
              | Rt.Move_all_tagged -> Policy.Move_all_tagged
              | Rt.Move_until_low -> Policy.Move_until_low);
            live_bytes;
            old_capacity;
            h2;
          }
        in
        let picks = rt.Rt.policy.Policy.select ctx ~roots:tagged in
        List.iter
          (fun (p : Policy.pick) ->
            let root = p.Policy.root in
            let label = root.Obj_.label in
            if label >= 0 && root.Obj_.mark = epoch then begin
              let before = !moved in
              (match p.Policy.cls with
              | Policy.Advised -> closure_of root label p.Policy.group
              | Policy.Budgeted ->
                  if
                    root.Obj_.closure_mark <> cepoch
                    && not (moved_budget_exhausted !moved)
                  then closure_of root label p.Policy.group);
              if !moved > before then
                observe rt
                  (Policy.Moved
                     {
                       label;
                       site = root.Obj_.site;
                       bytes = !moved - before;
                     })
            end)
          picks;
        if rt.Rt.policy.Policy.trace_decisions then
          trace_instant rt ~cat:"policy" ~name:"select"
            [
              ("policy", Th_trace.Event.Str rt.Rt.policy.Policy.name);
              ("picks", Th_trace.Event.Int (List.length picks));
              ("moved_bytes", Th_trace.Event.Int !moved);
            ]
      end
      else begin
        let pending =
          List.length
            (List.filter
               (fun (root : Obj_.t) ->
                 root.Obj_.label >= 0 && root.Obj_.mark = epoch)
               tagged)
        in
        trace_instant rt ~cat:"h2" ~name:"moves_suppressed"
          [ ("tagged_roots", Th_trace.Event.Int pending) ]
      end;
      regions_freed_now :=
        H2.free_dead_regions h2 ~on_free:(fun o ->
            note_death rt o;
            o.Obj_.loc <- Obj_.Freed));
  let marking_ns, t1 = phase_delta t0 in
  trace_span_end rt ~name:"marking"
    [ ("dur_ns", Th_trace.Event.Float marking_ns) ];
  trace_span_begin rt ~name:"precompact";

  (* --- Phase 2: precompaction -------------------------------------- *)
  (* Place move candidates in H2 regions keyed by label, then assign
     sliding-compaction addresses to the H1 survivors. *)
  (* Graceful degradation: running out of H2 space mid-compaction no
     longer aborts the run. The remaining candidates stay in H1 — their
     location and mark are untouched, so the normal compaction paths
     below keep them — and, since a tagged root self-cleans only once
     moved, the whole group is retried at the next major GC. *)
  let prev_locs = Vec.create () in
  let moved = Vec.create () in
  let deferred_objs = Vec.create () in
  let h2_full = ref false in
  Vec.iter
    (fun (((o : Obj_.t), group) : Obj_.t * int) ->
      match rt.Rt.h2 with
      | None ->
          Rt.invalid_heap_state ~object_id:o.Obj_.id
            ~phase:"precompaction: move candidate without an H2 heap"
      | Some h2 ->
          if !h2_full then Vec.push deferred_objs o
          else begin
            charge_major rt (costs.Costs.mark_obj_ns *. 0.5);
            let loc = o.Obj_.loc and bytes = Obj_.total_size o in
            match H2.alloc h2 ~group o ~label:o.Obj_.label with
            | () ->
                Vec.push prev_locs (o, loc, bytes);
                Vec.push moved o
            | exception H2.Out_of_h2_space ->
                h2_full := true;
                Vec.push deferred_objs o
          end)
    move_list;
  (match (rt.Rt.h2, !h2_full) with
  | Some h2, true ->
      H2.note_move_degraded h2 ~objects:(Vec.length deferred_objs);
      (* Re-tag the leftovers: their group root may itself have moved
         (self-cleaning off the tagged list), in which case nothing else
         would bring them to H2 at the next major GC. *)
      let listed = Hashtbl.create 64 in
      List.iter
        (fun (o : Obj_.t) -> Hashtbl.replace listed o.Obj_.id ())
        (H2.tagged_roots h2);
      Vec.iter
        (fun (o : Obj_.t) ->
          if not (Hashtbl.mem listed o.Obj_.id) then H2.retag_deferred h2 o)
        deferred_objs
  | (Some _ | None), _ -> ());
  let new_top = ref 0 in
  let assign (o : Obj_.t) =
    charge_major rt (costs.Costs.mark_obj_ns *. 0.5);
    o.Obj_.new_addr <- !new_top;
    (* Live humongous objects keep pinning their region slack: G1 never
       moves them. *)
    new_top := !new_top + Obj_.footprint o
  in
  Vec.iter
    (fun (o : Obj_.t) ->
      if o.Obj_.mark = epoch && o.Obj_.loc = Obj_.Old then assign o)
    heap.H1_heap.old_objs;
  (* PS full collections tenure all young survivors into the old gen. *)
  let promoted_young = Vec.create () in
  let collect_young (o : Obj_.t) =
    if o.Obj_.mark = epoch && Obj_.is_young o then begin
      assign o;
      Vec.push promoted_young o
    end
  in
  Vec.iter collect_young heap.H1_heap.eden;
  Vec.iter collect_young heap.H1_heap.survivor;
  let precompact_ns, t2 = phase_delta t1 in
  trace_span_end rt ~name:"precompact"
    [ ("dur_ns", Th_trace.Event.Float precompact_ns) ];
  trace_span_begin rt ~name:"adjust";

  (* --- Phase 3: pointer adjustment --------------------------------- *)
  Vec.iter
    (fun (o : Obj_.t) ->
      if Obj_.is_in_h1 o then
        Obj_.iter_refs
          (fun _ ->
            charge_major rt (costs.Costs.trace_ref_ns *. Rt.gen_mult rt o))
          o)
    live;
  (match rt.Rt.h2 with
  | None -> ()
  | Some h2 ->
      (* Adjust backward references to the new H1 locations. *)
      charge_major rt
        (float_of_int !backward_refs *. costs.Costs.trace_ref_ns);
      (* For each moved object: record new cross-region references and
         newly-created backward references (§4, pointer adjustment). *)
      Vec.iter
        (fun (o : Obj_.t) ->
          Obj_.iter_refs
            (fun c ->
              charge_major rt costs.Costs.trace_ref_ns;
              match c.Obj_.loc with
              | Obj_.In_h2 ->
                  if c.Obj_.h2_region <> o.Obj_.h2_region then
                    H2.add_dependency h2 ~src_region:o.Obj_.h2_region
                      ~dst_region:c.Obj_.h2_region
              | Obj_.Eden | Obj_.Survivor | Obj_.Old ->
                  H2.note_backward_ref h2 o
              | Obj_.Freed -> ())
            o)
        moved);
  let adjust_ns, t3 = phase_delta t2 in
  trace_span_end rt ~name:"adjust"
    [ ("dur_ns", Th_trace.Event.Float adjust_ns) ];
  trace_span_begin rt ~name:"compact";

  (* --- Phase 4: compaction ------------------------------------------ *)
  (* Account the H1 space vacated by objects that moved to H2. *)
  Vec.iter
    (fun ((o : Obj_.t), prev_loc, bytes) ->
      match prev_loc with
      | Obj_.Eden -> heap.H1_heap.eden_used <- heap.H1_heap.eden_used - bytes
      | Obj_.Survivor ->
          heap.H1_heap.survivor_used <- heap.H1_heap.survivor_used - bytes
      | Obj_.Old -> heap.H1_heap.old_used <- heap.H1_heap.old_used - bytes
      | Obj_.In_h2 | Obj_.Freed ->
          Rt.invalid_heap_state ~object_id:o.Obj_.id
            ~phase:"compaction: moved object recorded with a non-H1 origin")
    prev_locs;
  (* Slide live old objects and copy young survivors into the old gen. *)
  let copy_factor = g1_copy_factor rt in
  let compact_old (o : Obj_.t) =
    if not (g1_skip_copy rt o) then
      charge_major rt
        (float_of_int (Obj_.total_size o)
        *. costs.Costs.copy_byte_ns
        *. rt.Rt.profile.Cost_profile.old_mult
        *. copy_factor);
    o.Obj_.addr <- o.Obj_.new_addr
  in
  let new_old = Vec.create () in
  Vec.iter
    (fun (o : Obj_.t) ->
      if o.Obj_.mark = epoch && o.Obj_.loc = Obj_.Old then begin
        compact_old o;
        Vec.push new_old o
      end
      else if o.Obj_.loc = Obj_.Old then begin
        note_death rt o;
        H1_heap.free_object heap o
      end)
    heap.H1_heap.old_objs;
  Vec.clear heap.H1_heap.old_objs;
  Vec.iter (Vec.push heap.H1_heap.old_objs) new_old;
  let tenure (o : Obj_.t) =
    let bytes = Obj_.total_size o in
    charge_major rt
      (float_of_int bytes *. costs.Costs.copy_byte_ns
      *. rt.Rt.profile.Cost_profile.young_mult);
    H1_heap.promote heap o ~addr:o.Obj_.new_addr;
    o.Obj_.age <- heap.H1_heap.tenure_threshold
  in
  Vec.iter tenure promoted_young;
  (* Sweep the young spaces. *)
  Vec.iter
    (fun (o : Obj_.t) ->
      if o.Obj_.loc = Obj_.Eden then begin
        note_death rt o;
        H1_heap.free_object heap o
      end)
    heap.H1_heap.eden;
  Vec.clear heap.H1_heap.eden;
  Vec.iter
    (fun (o : Obj_.t) ->
      if o.Obj_.loc = Obj_.Survivor then begin
        note_death rt o;
        H1_heap.free_object heap o
      end)
    heap.H1_heap.survivor;
  Vec.clear heap.H1_heap.survivor;
  heap.H1_heap.old_top <- !new_top;
  heap.H1_heap.old_used <- !new_top;
  (* Write the moved objects out to H2 in promotion-buffer batches. *)
  let bytes_moved =
    Vec.fold_left (fun acc ((_, _, b) : Obj_.t * Obj_.location * int) -> acc + b)
      0 prev_locs
  in
  (match rt.Rt.h2 with
  | None -> ()
  | Some h2 ->
      H2.flush_promotion_buffers h2;
      H2.recompute_card_states h2 ~major:true);
  (* The full collection leaves no old-to-young references. *)
  Card_table.clear_all heap.H1_heap.cards;
  (* Release the dead objects still referenced by the space vectors'
     backing arrays, then rebuild the remembered-set index: compaction
     reassigned every old-generation address. [old_objs] is rebuilt in
     ascending-address order above, so registration order matches it. *)
  H1_heap.compact_after_major heap;
  H1_heap.rebuild_card_index heap;
  let compact_ns, _ = phase_delta t3 in
  trace_span_end rt ~name:"compact"
    [ ("dur_ns", Th_trace.Event.Float compact_ns) ];

  (* --- Epilogue ----------------------------------------------------- *)
  let regions_freed = !regions_freed_now in
  (* High/low-threshold policy for the next cycle (§3.2). *)
  (match rt.Rt.h2 with
  | None -> ()
  | Some h2 ->
      let ratio = H1_heap.old_occupancy heap in
      H2.adapt_thresholds h2 ~live_ratio:ratio;
      if ratio > H2.high_threshold h2 then
        rt.Rt.pressure <-
          (match H2.low_threshold h2 with
          | Some _ -> Rt.Move_until_low
          | None -> Rt.Move_all_tagged)
      else rt.Rt.pressure <- Rt.No_pressure);
  rt.Rt.in_gc <- false;
  let total = Clock.sub (Clock.breakdown rt.Rt.clock) t0 in
  Gc_stats.record rt.Rt.stats
    (Gc_stats.Major
       {
         at_ns = Clock.now_ns rt.Rt.clock;
         duration_ns = total.Clock.major_gc_ns;
         phases =
           {
             Gc_stats.marking_ns;
             precompact_ns;
             adjust_ns;
             compact_ns;
           };
         old_occupancy_after = H1_heap.old_occupancy heap;
         bytes_moved_to_h2 = bytes_moved;
         regions_freed;
       });
  Gc_stats.record_occupancy rt.Rt.stats ~at_ns:(Clock.now_ns rt.Rt.clock)
    (H1_heap.old_occupancy heap);
  (* Close the span before the safepoint and the OOM check: the trace
     keeps a complete cycle even on the path that raises. *)
  trace_span_end rt ~name:"major_gc"
    [
      ("dur_ns", Th_trace.Event.Float total.Clock.major_gc_ns);
      ("bytes_moved", Th_trace.Event.Int bytes_moved);
      ("regions_freed", Th_trace.Event.Int regions_freed);
    ];
  (* Announce the safepoint before the OOM check: a verifier should see
     the post-compaction heap even on the path that raises. *)
  Rt.safepoint rt Rt.After_major;
  if !new_top > heap.H1_heap.old_capacity then
    raise
      (Rt.Out_of_memory
         (Printf.sprintf "live data (%s) exceeds old generation (%s)"
            (Size.to_string !new_top)
            (Size.to_string heap.H1_heap.old_capacity)))
