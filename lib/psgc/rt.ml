(* Runtime state shared by the mutator facade ({!Runtime}) and the
   collector ({!Ps_gc}). Kept in its own module to break the mutual
   dependency between allocation (which triggers GC) and collection. *)

open Th_sim
module Obj_ = Th_objmodel.Heap_object
module Roots = Th_objmodel.Roots
module H1_heap = Th_minijvm.H1_heap
module H2 = Th_core.H2

exception Out_of_memory of string

(* Raised in place of the old [assert false] dead branches: an object's
   location contradicts the runtime configuration or collection phase
   (e.g. an [In_h2] object with no H2 heap attached). Carries enough
   context to identify the object and the phase that tripped over it. *)
exception Invalid_heap_state of { object_id : int; phase : string }

let invalid_heap_state ~object_id ~phase =
  raise (Invalid_heap_state { object_id; phase })

type collector = Ps | Ps_jdk11 | G1

(* How minor GC finds old-to-young references. [Card_buckets] (default)
   visits only the dirty cards' remembered-set buckets; [Linear_scan]
   sweeps every old-generation object, checking its card — the original
   O(#old objects) implementation, kept as a debug/equivalence oracle.
   Both visit the same objects in the same order (the old generation is
   address-sorted and buckets preserve insertion order), so they charge
   identical simulated time. *)
type rset_mode = Card_buckets | Linear_scan

(* Pending move policy decided at the end of the previous major GC. *)
type move_pressure = No_pressure | Move_all_tagged | Move_until_low

(* GC safepoints at which an external observer (the Th_verify sanitizer)
   may inspect the heap. The hook lives here, not in Th_verify, so the
   collector never depends on the verifier: Ps_gc announces the
   safepoint and whatever is installed — nothing, by default — runs. *)
type safepoint = Before_minor | After_minor | Before_major | After_major

type t = {
  clock : Clock.t;
  costs : Costs.t;
  heap : H1_heap.t;
  roots : Roots.t;
  h2 : H2.t option;
  profile : Cost_profile.t;
  collector : collector;
  rset_mode : rset_mode;
  stats : Gc_stats.t;
  mutable mark_epoch : int;
  mutable closure_epoch : int;
  mutable pressure : move_pressure;
  mutable in_gc : bool;
  mutable barrier_checks : int;  (* post-write barriers executed *)
  mutable g1_humongous_waste : int;  (* wasted bytes in humongous regions *)
  g1_region_size : int;
  mutable safepoint_hook : (safepoint -> unit) option;
  (* Consulted once per major GC before the move-to-H2 passes; [false]
     suppresses moving (tagged roots stay in H1 for this cycle). The
     Th_resilience circuit breaker installs this — the collector itself
     never decides to stop moving. *)
  mutable h2_move_gate : (unit -> bool) option;
  (* Decides which tagged roots move at each major GC and how they
     group into H2 regions. The default reproduces the paper's
     high/low-threshold behavior bit-for-bit; the collector keeps the
     validity guards and the pressure budget, so a policy can only
     choose among safe moves, never invent unsafe ones. *)
  mutable policy : Th_policy.Policy.t;
}

let create ?(collector = Ps) ?(profile = Cost_profile.dram)
    ?(rset_mode = Card_buckets) ?h2 ?(policy = Th_policy.Policy.threshold)
    ~clock ~costs ~heap () =
  {
    clock;
    costs;
    heap;
    roots = Roots.create ();
    h2;
    profile;
    collector;
    rset_mode;
    stats = Gc_stats.create ();
    mark_epoch = 0;
    closure_epoch = 0;
    pressure = No_pressure;
    in_gc = false;
    barrier_checks = 0;
    g1_humongous_waste = 0;
    (* 512 regions: reproduces the array-to-region size ratio of G1 on
       the paper's heaps (partition arrays spanning a few regions). *)
    g1_region_size = max (Size.kib 64) (H1_heap.heap_bytes heap / 512);
    safepoint_hook = None;
    h2_move_gate = None;
    policy;
  }

let h2_moves_allowed t =
  match t.h2_move_gate with None -> true | Some gate -> gate ()

let safepoint_name = function
  | Before_minor -> "before_minor"
  | After_minor -> "after_minor"
  | Before_major -> "before_major"
  | After_major -> "after_major"

(* Trace emission happens here at the announcement point, not through the
   single-slot [safepoint_hook] — the hook stays free for the Th_verify
   sanitizer. Safepoints double as the sampling points for the cumulative
   device / page-cache / occupancy counters: cheap, already at a
   consistent heap state, and frequent enough to plot. *)
let trace_safepoint t p =
  match Clock.tracer t.clock with
  | None -> ()
  | Some tr -> (
      let ts = Clock.now_ns t.clock in
      Th_trace.Recorder.instant tr ~ts ~cat:"safepoint" ~name:(safepoint_name p)
        ();
      match t.h2 with
      | None -> ()
      | Some h2 ->
          let d = Th_device.Device.stats (Th_core.H2.device h2) in
          Th_trace.Recorder.counter tr ~ts ~cat:"counter" ~name:"device_io"
            ~args:
              [
                ("bytes_read", Th_trace.Event.Int d.Th_device.Device.bytes_read);
                ( "bytes_written",
                  Th_trace.Event.Int d.Th_device.Device.bytes_written );
                ("read_ops", Th_trace.Event.Int d.Th_device.Device.read_ops);
                ("write_ops", Th_trace.Event.Int d.Th_device.Device.write_ops);
              ];
          let c =
            Th_device.Page_cache.stats (Th_core.H2.page_cache h2)
          in
          Th_trace.Recorder.counter tr ~ts ~cat:"counter" ~name:"page_cache"
            ~args:
              [
                ("hits", Th_trace.Event.Int c.Th_device.Page_cache.hits);
                ("misses", Th_trace.Event.Int c.Th_device.Page_cache.misses);
                ( "evictions",
                  Th_trace.Event.Int c.Th_device.Page_cache.evictions );
                ( "writebacks",
                  Th_trace.Event.Int c.Th_device.Page_cache.writebacks );
              ];
          Th_trace.Recorder.counter tr ~ts ~cat:"counter"
            ~name:"h1_old_occupancy"
            ~args:
              [
                ( "fraction",
                  Th_trace.Event.Float (H1_heap.old_occupancy t.heap) );
              ])

let safepoint t p =
  trace_safepoint t p;
  match t.safepoint_hook with None -> () | Some f -> f p

let teraheap_enabled t = t.h2 <> None

let charge t cat ns = Clock.advance t.clock cat ns

(* Parallel minor-GC work divides over the GC threads; PS's old-generation
   (major) collection is single-threaded in OpenJDK8, parallel in the
   JDK11/G1 configurations. *)
let charge_minor t ns =
  charge t Clock.Minor_gc
    (Costs.parallel t.costs ~threads:t.costs.Costs.gc_threads ns)

let major_threads t =
  match t.collector with
  | Ps -> t.costs.Costs.old_gc_threads
  | Ps_jdk11 | G1 -> t.costs.Costs.gc_threads

let gen_mult t (o : Obj_.t) =
  match o.Obj_.loc with
  | Obj_.Eden | Obj_.Survivor -> t.profile.Cost_profile.young_mult
  | Obj_.Old -> t.profile.Cost_profile.old_mult
  | Obj_.In_h2 | Obj_.Freed -> 1.0
