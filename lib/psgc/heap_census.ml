open Th_sim
module Obj_ = Th_objmodel.Heap_object
module H1_heap = Th_minijvm.H1_heap

type entry = { kind : Obj_.kind; count : int; bytes : int }

let kind_name = function
  | Obj_.Data -> "data"
  | Obj_.Array_data -> "array"
  | Obj_.Jvm_metadata -> "jvm-metadata"
  | Obj_.Weak_reference -> "weak-ref"
  | Obj_.Temp -> "temp"

let of_runtime (rt : Rt.t) =
  let heap = rt.Rt.heap in
  let acc : (Obj_.kind, int * int) Hashtbl.t = Hashtbl.create 8 in
  let visit (o : Obj_.t) =
    let count, bytes =
      match Hashtbl.find_opt acc o.Obj_.kind with
      | Some (c, b) -> (c, b)
      | None -> (0, 0)
    in
    Hashtbl.replace acc o.Obj_.kind (count + 1, bytes + Obj_.total_size o)
  in
  Vec.iter visit heap.H1_heap.eden;
  Vec.iter visit heap.H1_heap.survivor;
  Vec.iter visit heap.H1_heap.old_objs;
  (* Order-insensitive: the fold only accumulates; the sort below fixes
     the order, with the kind name breaking byte-count ties so the result
     never depends on hash iteration. th-lint: allow hashtbl-order *)
  Hashtbl.fold (fun kind (count, bytes) l -> { kind; count; bytes } :: l) acc []
  |> List.sort (fun a b ->
         match Int.compare b.bytes a.bytes with
         | 0 -> String.compare (kind_name a.kind) (kind_name b.kind)
         | c -> c)

let total_bytes entries =
  List.fold_left (fun acc e -> acc + e.bytes) 0 entries

let pp f entries =
  List.iter
    (fun e ->
      Format.fprintf f "%-14s %8d objs  %s@." (kind_name e.kind) e.count
        (Size.to_string e.bytes))
    entries
