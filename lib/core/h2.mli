(** The second, high-capacity heap (H2) — the paper's core contribution.

    H2 is a region-based heap memory-mapped over a fast storage device
    (Figure 1). Objects enter H2 only during major GC, grouped by the label
    of the root key-object whose transitive closure they belong to (§3.2).
    Regions are reclaimed lazily and in bulk: no object is ever scanned or
    compacted on the device (§3.3). Liveness is region-grained, driven by
    forward references (H1 to H2) and per-region dependency lists for
    cross-region references. Backward references (H2 to H1) are tracked by
    the 4-state {!H2_card_table}. *)

exception Out_of_h2_space

type reclaim_mode =
  | Dependency_lists  (** per-region directed dependency lists (§3.3) *)
  | Region_groups
      (** the simpler Union-Find alternative the paper evaluates and
          rejects: direction-blind region groups *)

type placement_policy =
  | Label_only  (** the paper's placement: one open region per label *)
  | Size_segregated
      (** §7.3 future work: large objects get their own regions per label
          so a few big dead arrays cannot pin regions full of small live
          objects (the BFS/SSSP space-waste pattern of Figure 10) *)

type config = {
  region_size : int;
  capacity : int;
  card_segment_size : int;
  stripe_aligned : bool;
  reclaim_mode : reclaim_mode;
  placement : placement_policy;
  promotion_buffer_bytes : int;  (** batched async-I/O buffer (2 MiB) *)
  high_threshold : float;
      (** H1 live-occupancy fraction that forces moving marked objects at
          the next major GC even without an [h2_move] hint (0.85) *)
  low_threshold : float option;
      (** when set, threshold-forced moves stop once H1 usage drops below
          this fraction (§7.2 uses 0.50); [None] moves everything marked *)
  dynamic_thresholds : bool;
      (** adapt the low threshold at run time (§7.2 future work); see
          {!adapt_thresholds} *)
  use_move_hint : bool;
      (** honour [h2_move]; when false, only the threshold mechanism
          triggers moves (the "NH" configuration of Figure 9a) *)
  huge_pages : bool;  (** 2 MiB mmap granularity for streaming workloads *)
}

val default_config : config
(** 4 MiB regions (paper: 256 MiB, scaled), 256 MiB H2, 4 KiB card
    segments, dependency lists, 2 MiB promotion buffers, thresholds
    0.85 / Some 0.5, hints enabled. *)

type region_sample = {
  live_object_pct : float;
  live_space_pct : float;
}
(** One Figure-10 data point: share of a region's objects (and bytes) that
    were still live when the region was sampled (0 for reclaimed regions). *)

type stats = {
  regions_allocated : int;  (** cumulative regions ever opened *)
  regions_reclaimed : int;
  regions_active : int;
  used_bytes : int;
  wasted_bytes : int;  (** allocated-region space not covered by objects *)
  dep_nodes : int;  (** total dependency-list nodes in DRAM *)
  moves_to_h2 : int;  (** objects moved H1 -> H2 so far *)
  bytes_moved : int;
  readback_bytes : int;
      (** bytes of H2 residents the mutator read back after placement
          (object granularity, cache hit or miss) — the traffic
          placement policies compete on *)
  rmw_bytes : int;
      (** bytes of H2 residents the mutator updated in place
          (read-modify-write, §7.2) *)
  minor_scan_time_ns : float;
      (** cumulative minor-GC time spent scanning H2 cards and objects *)
  degraded_moves : int;
      (** compaction phases that hit [Out_of_h2_space] and fell back to
          leaving the remaining tagged objects in H1 *)
  objects_deferred : int;
      (** marked objects left in H1 by those degraded compactions; they
          are retried at the next major GC *)
  flush_deferrals : int;
      (** promotion-buffer flushes whose device write exhausted its fault
          retries; the batch stays staged and is re-flushed later *)
}

type t

val create :
  config:config ->
  clock:Th_sim.Clock.t ->
  costs:Th_sim.Costs.t ->
  device:Th_device.Device.t ->
  dr2_bytes:int ->
  unit ->
  t
(** [dr2_bytes] is the DRAM the system devotes to the kernel page cache in
    front of the H2 device (the paper's DR2). *)

val config : t -> config

val card_table : t -> H2_card_table.t

val page_cache : t -> Th_device.Page_cache.t

(** {1 Hint-based interface (§3.2)} *)

val h2_tag_root :
  t -> ?site:int -> Th_objmodel.Heap_object.t -> label:int -> unit
(** Tag a root key-object for movement to H2 under [label]; sets the
    object's header label word. [site] (default [label]) names the
    allocation site for lifetime-profiling policies; it must be stable
    across runs of the same workload. *)

val h2_move : t -> label:int -> unit
(** Advise moving all objects tagged [label] to H2 during the next major
    GC. Ignored when [use_move_hint] is false. *)

val move_advised : t -> label:int -> bool

val clear_move_advice : t -> label:int -> unit
(** Called by the collector once the labelled objects have moved. *)

val tagged_roots : t -> Th_objmodel.Heap_object.t list
(** Root key-objects tagged but not yet moved, freshest last. *)

val forget_tagged_root : t -> Th_objmodel.Heap_object.t -> unit

val retag_deferred : t -> Th_objmodel.Heap_object.t -> unit
(** Put a labelled object a degraded compaction left in H1 back on the
    tagged list, so the next major GC retries moving it even when its
    original root has already moved to H2. The caller must ensure the
    object is not already listed. *)

(** {1 Allocation (major-GC compaction phase)} *)

val alloc : t -> ?group:int -> Th_objmodel.Heap_object.t -> label:int -> unit
(** Place an object in the open region of [label] (opening a new region if
    needed), set its location, and stage its bytes in the region's
    promotion buffer. Objects never span regions. [group] (default
    [label]) overrides the allocator bucket: placement policies that
    co-locate several labels in one region pass a shared group key.
    Raises {!Out_of_h2_space} when no region is available, and
    [Invalid_argument] if the object exceeds the region size. *)

val flush_promotion_buffers : t -> unit
(** Drain all promotion buffers with batched sequential device writes,
    charged to major-GC time (the compaction phase's device I/O). A write
    that exhausts its fault retries leaves the batch staged in DRAM
    (counted in [flush_deferrals]) to be retried at the next flush — the
    placed objects are unaffected. *)

val note_move_degraded : t -> objects:int -> unit
(** Called by the collector when compaction ran out of H2 space and left
    [objects] marked objects behind in H1: records the degraded-mode
    event here and on the device's fault injector, if any. *)

(** {1 Liveness and reclamation (§3.3)} *)

val clear_live_bits : t -> unit
(** Start of the major-GC marking phase. *)

val mark_live_from_h1 : t -> Th_objmodel.Heap_object.t -> unit
(** Record a forward reference (H1 to H2) to the given H2 object: sets the
    region's live bit and recursively the live bits of the regions on its
    dependency list ([Dependency_lists] mode), or marks the region's group
    live ([Region_groups] mode). *)

val region_is_live : t -> region:int -> bool

val add_dependency : t -> src_region:int -> dst_region:int -> unit
(** Record a cross-region reference; deduplicated. In [Region_groups]
    mode, merges the two regions' groups instead. *)

val note_backward_ref : t -> Th_objmodel.Heap_object.t -> unit
(** The given H2 object references an H1 object: mark its card dirty. *)

val free_dead_regions :
  t -> on_free:(Th_objmodel.Heap_object.t -> unit) -> int
(** Reclaim every region whose live bit (or group, in [Region_groups]
    mode) is unset: reset the allocation pointer, delete the dependency
    list, clear its cards, and drop its page-cache pages without
    writeback. [on_free] runs on each object of a reclaimed region.
    Returns the number of regions freed. *)

(** {1 Mutator access (memory-mapped loads and stores)} *)

val mutator_read : t -> Th_objmodel.Heap_object.t -> unit
(** Charge a load of the object through the page cache (page faults land
    in "other" time, §6). *)

val mutator_write : t -> Th_objmodel.Heap_object.t -> unit
(** Charge a store: page-cache write plus a dirty card (post-write
    barrier). This is the read-modify-write device traffic that makes
    moving still-mutable objects to H2 expensive (§7.2). *)

(** {1 Card scanning (GC)} *)

val scan_cards_minor : t -> on_object:(Th_objmodel.Heap_object.t -> unit) -> unit
(** Scan [Dirty] and [Young_gen] segments: charge card-scan and
    object-scan costs, fault segment pages, and invoke [on_object] on each
    object overlapping a scanned segment. *)

val scan_cards_major : t -> on_object:(Th_objmodel.Heap_object.t -> unit) -> unit
(** Same, additionally scanning [Old_gen] segments. *)

val minor_scan_ns : t -> float
(** Cumulative simulated time of minor-GC H2 card scanning (Figure 11a's
    "minor GC time in H2"). *)

val high_threshold : t -> float
(** Current high threshold (equal to the configured one unless
    [dynamic_thresholds] has adapted the pair). *)

val low_threshold : t -> float option

val adapt_thresholds : t -> live_ratio:float -> unit
(** Adaptive threshold controller (§7.2 future work), called by the
    collector at the end of each major GC with the post-collection H1
    live-occupancy ratio: sustained pressure lowers the low threshold
    (move more per cycle); comfortable headroom raises it (spare mutable
    objects the device read-modify-writes). No-op unless
    [dynamic_thresholds] is set. *)

val recompute_card_states : t -> major:bool -> unit
(** After the collector has moved H1 objects, downgrade scanned segments
    to [Young_gen], [Old_gen] or [Clean] according to the current
    locations of the objects they reference. Minor GC recomputes [Dirty]
    and [Young_gen] segments; major GC recomputes all non-clean ones. *)

(** {1 Introspection} *)

val device : t -> Th_device.Device.t

val allocated_regions : t -> int
(** Regions ever opened: indices [0 .. allocated_regions - 1] have been in
    use at least once (some may since have been reclaimed). *)

val free_region_list : t -> int list
(** Indices of reclaimed regions awaiting reuse. *)

val label_of_region : t -> region:int -> int
(** The region's label, or -1 if it is free. *)

val in_same_group : t -> a:int -> b:int -> bool
(** Whether two regions share a Union-Find group ([Region_groups] mode). *)

type region_view = {
  view_idx : int;
  view_label : int;  (** -1 = free *)
  view_top : int;
  view_live : bool;
  view_deps : int list;
  view_objects : Th_objmodel.Heap_object.t Th_sim.Vec.t;
      (** the live backing vector — callers must not mutate it *)
}
(** Read-only snapshot of one region's metadata, for external invariant
    checking ({!Th_verify}). *)

val iter_region_views : t -> (region_view -> unit) -> unit
(** Visit every ever-opened region, free ones included, in index order. *)

val debug_remove_dependency : t -> src_region:int -> dst_region:int -> unit
(** Test-only corruption plant: silently drop a dependency edge so the
    sanitizer's mutation tests can verify it is detected. *)

val stats : t -> stats

val used_bytes : t -> int

val iter_objects : t -> (Th_objmodel.Heap_object.t -> unit) -> unit

val region_of_object : t -> Th_objmodel.Heap_object.t -> int

val region_object_count : t -> region:int -> int

val metadata_bytes : t -> int
(** Current DRAM metadata: card table + per-region metadata + dependency
    nodes. *)

val metadata_bytes_per_tb : region_size:int -> int
(** Analytic Table-5 model: DRAM metadata per TB of H2 for a given region
    size, assuming the paper's average of 10 dependency nodes per region. *)

val harvest_region_samples :
  t -> is_live:(Th_objmodel.Heap_object.t -> bool) -> region_sample list
(** Figure-10 data: samples recorded for regions reclaimed during the run
    (0 % live) plus a snapshot of every active region under the supplied
    liveness oracle. *)
