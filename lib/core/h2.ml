open Th_sim
module Obj_ = Th_objmodel.Heap_object
module Device = Th_device.Device
module Io_retry = Th_device.Io_retry
module Page_cache = Th_device.Page_cache

exception Out_of_h2_space

type reclaim_mode = Dependency_lists | Region_groups

type placement_policy = Label_only | Size_segregated

type config = {
  region_size : int;
  capacity : int;
  card_segment_size : int;
  stripe_aligned : bool;
  reclaim_mode : reclaim_mode;
  placement : placement_policy;
  promotion_buffer_bytes : int;
  high_threshold : float;
  low_threshold : float option;
  dynamic_thresholds : bool;
  use_move_hint : bool;
  huge_pages : bool;
}

let default_config =
  {
    region_size = Size.mib 4;
    capacity = Size.mib 256;
    card_segment_size = Size.kib 4;
    stripe_aligned = true;
    reclaim_mode = Dependency_lists;
    placement = Label_only;
    promotion_buffer_bytes = Size.mib 2;
    high_threshold = 0.85;
    low_threshold = Some 0.5;
    dynamic_thresholds = false;
    use_move_hint = true;
    huge_pages = false;
  }

type region_sample = { live_object_pct : float; live_space_pct : float }

type stats = {
  regions_allocated : int;
  regions_reclaimed : int;
  regions_active : int;
  used_bytes : int;
  wasted_bytes : int;
  dep_nodes : int;
  moves_to_h2 : int;
  bytes_moved : int;
  readback_bytes : int;
  rmw_bytes : int;
  minor_scan_time_ns : float;
  degraded_moves : int;
  objects_deferred : int;
  flush_deferrals : int;
}

type region = {
  idx : int;
  mutable label : int;  (* -1 = free *)
  mutable open_key : int;  (* allocator bucket this region is open for *)
  mutable top : int;
  mutable live : bool;
  mutable deps : int list;  (* regions this region's objects reference *)
  objects : Obj_.t Vec.t;  (* append-only, therefore sorted by addr *)
  mutable buffer_fill : int;
  (* Per-card-segment buckets of the objects overlapping each segment
     (an object spanning several segments is registered in all of them).
     Sized lazily on first allocation; reset to [||] when the region is
     reclaimed or reopened, which also releases the object references.
     Buckets inherit [objects]'s address order, so dirty-segment scans
     visit objects exactly as the former binary-search walk did. *)
  mutable seg_index : Obj_.t Vec.t option array;
}

type t = {
  cfg : config;
  clock : Clock.t;
  costs : Costs.t;
  device : Device.t;
  cache : Page_cache.t;
  cards : H2_card_table.t;
  regions : region array;
  mutable next_fresh : int;
  free_regions : int Vec.t;
  open_by_key : (int, int) Hashtbl.t;  (* allocator bucket -> open region *)
  mutable high : float;  (* current thresholds; adapted when dynamic *)
  mutable low : float option;
  move_advice : (int, unit) Hashtbl.t;
  tagged : Obj_.t Vec.t;
  (* Union-Find state for the Region_groups ablation. *)
  group_parent : int array;
  group_live : bool array;
  (* statistics *)
  mutable regions_allocated : int;
  mutable regions_reclaimed : int;
  mutable moves : int;
  mutable bytes_moved : int;
  (* Mutator traffic against H2 residents: the read-back and
     read-modify-write bytes a placement policy is judged on. Counted at
     object granularity on every mutator touch, cache hit or miss — the
     device-level split is in {!Device.stats}. *)
  mutable readback_bytes : int;
  mutable rmw_bytes : int;
  mutable minor_scan_ns : float;
      (* simulated time spent scanning H2 cards/objects during minor GC *)
  (* degraded-mode accounting *)
  mutable degraded_moves : int;
  mutable objects_deferred : int;
  mutable flush_deferrals : int;
  samples : region_sample Vec.t;
}

(* Measured DRAM metadata per region, dependency nodes included
   (calibrated to Table 5: 417 MB per TB of H2 with 1 MB regions). *)
let region_metadata_base_bytes = 57
let dep_node_bytes = 36
let avg_dep_nodes_per_region = 10

let create ~config:cfg ~clock ~costs ~device ~dr2_bytes () =
  if cfg.region_size <= 0 || cfg.capacity < cfg.region_size then
    invalid_arg "H2.create: bad region/capacity sizes";
  let n = cfg.capacity / cfg.region_size in
  let cache_page = if cfg.huge_pages then Size.mib 2 else Device.page_size device in
  let regions =
    Array.init n (fun idx ->
        {
          idx;
          label = -1;
          open_key = -1;
          top = 0;
          live = false;
          deps = [];
          objects = Vec.create ();
          buffer_fill = 0;
          seg_index = [||];
        })
  in
  {
    cfg;
    clock;
    costs;
    device;
    cache = Page_cache.create ~page_size:cache_page ~capacity_bytes:dr2_bytes clock device;
    cards =
      H2_card_table.create ~segment_size:cfg.card_segment_size
        ~stripe_aligned:cfg.stripe_aligned ~stripe_size:cfg.region_size
        ~capacity_bytes:cfg.capacity ();
    regions;
    next_fresh = 0;
    free_regions = Vec.create ();
    open_by_key = Hashtbl.create 64;
    high = cfg.high_threshold;
    low = cfg.low_threshold;
    move_advice = Hashtbl.create 16;
    tagged = Vec.create ();
    group_parent = Array.init n (fun i -> i);
    group_live = Array.make n false;
    regions_allocated = 0;
    regions_reclaimed = 0;
    moves = 0;
    bytes_moved = 0;
    readback_bytes = 0;
    rmw_bytes = 0;
    minor_scan_ns = 0.0;
    degraded_moves = 0;
    objects_deferred = 0;
    flush_deferrals = 0;
    samples = Vec.create ();
  }
  |> fun t ->
  H2_card_table.set_trace_clock t.cards (Some clock);
  t

let config t = t.cfg

let card_table t = t.cards

let page_cache t = t.cache

let gaddr t (o : Obj_.t) = (o.Obj_.h2_region * t.cfg.region_size) + o.Obj_.addr

(* ------------------------------------------------------------------ *)
(* Hint interface                                                      *)

let h2_tag_root t ?site o ~label =
  if label < 0 then invalid_arg "H2.h2_tag_root: negative label";
  (* Tagging marks H1 objects for movement; objects already in H2 keep
     the label of the move that placed them. The site (defaulting to the
     label) keys allocation-site lifetime profiles. *)
  if o.Obj_.loc <> Obj_.In_h2 && o.Obj_.label <> label then begin
    o.Obj_.label <- label;
    o.Obj_.site <- (match site with Some s -> s | None -> label);
    Vec.push t.tagged o
  end

let h2_move t ~label =
  if t.cfg.use_move_hint then Hashtbl.replace t.move_advice label ()

let move_advised t ~label = Hashtbl.mem t.move_advice label

let clear_move_advice t ~label = Hashtbl.remove t.move_advice label

let tagged_roots t =
  Vec.filter_in_place
    (fun (o : Obj_.t) -> o.Obj_.label >= 0 && o.Obj_.loc <> Obj_.In_h2 && o.Obj_.loc <> Obj_.Freed)
    t.tagged;
  Vec.to_list t.tagged

let forget_tagged_root t o =
  Vec.filter_in_place (fun (x : Obj_.t) -> x != o) t.tagged

(* A degraded compaction left this labelled object in H1. Its original
   root may itself have moved — and self-cleaned off the tagged list —
   so the object re-enters the list to drive the retry at the next major
   GC. [h2_tag_root] would refuse it (the label is already set); the
   caller guarantees it is not already listed. *)
let retag_deferred t (o : Obj_.t) =
  if o.Obj_.label >= 0 && o.Obj_.loc <> Obj_.In_h2 && o.Obj_.loc <> Obj_.Freed
  then Vec.push t.tagged o

(* ------------------------------------------------------------------ *)
(* Union-Find over regions (Region_groups mode)                        *)

let rec uf_find t i =
  let p = t.group_parent.(i) in
  if p = i then i
  else begin
    let r = uf_find t p in
    t.group_parent.(i) <- r;
    r
  end

let uf_union t a b =
  let ra = uf_find t a and rb = uf_find t b in
  if ra <> rb then t.group_parent.(ra) <- rb

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)

let align8 n = (n + 7) land lnot 7

let note_fault_degraded t ~objects =
  match Device.faults t.device with
  | Some f -> Fault.note_h2_degraded f ~objects ()
  | None -> ()

(* Region lifecycle, flush batches and degradations trace as instants;
   individual object moves do not (a compaction moves thousands — batch
   granularity keeps the ring within budget). *)
let h2_instant t ~name args =
  match Clock.tracer t.clock with
  | None -> ()
  | Some tr ->
      Th_trace.Recorder.instant tr ~ts:(Clock.now_ns t.clock) ~cat:"h2" ~name
        ~args ()

let note_move_degraded t ~objects =
  t.degraded_moves <- t.degraded_moves + 1;
  t.objects_deferred <- t.objects_deferred + objects;
  h2_instant t ~name:"degraded_move" [ ("objects", Th_trace.Event.Int objects) ];
  note_fault_degraded t ~objects

let flush_buffer t (r : region) =
  if r.buffer_fill > 0 then begin
    (* Explicit asynchronous batched write to the device (§3.2), plus the
       DRAM-side copy into the promotion buffer. *)
    h2_instant t ~name:"flush"
      [
        ("region", Th_trace.Event.Int r.idx);
        ("bytes", Th_trace.Event.Int r.buffer_fill);
      ];
    Clock.advance t.clock Clock.Major_gc
      (float_of_int r.buffer_fill *. t.costs.Costs.copy_byte_ns);
    match
      Device.write ~checked:true t.device ~cat:Clock.Major_gc ~random:false
        r.buffer_fill
    with
    | () -> r.buffer_fill <- 0
    | exception Io_retry.Io_error _ ->
        (* A transient write failure outlasted the retry budget (e.g. a
           device-full window): the batch stays staged in DRAM and the
           flush is retried at the next compaction phase. The objects are
           already placed, so only the device write is deferred. *)
        t.flush_deferrals <- t.flush_deferrals + 1;
        h2_instant t ~name:"flush_deferred"
          [ ("region", Th_trace.Event.Int r.idx) ];
        note_fault_degraded t ~objects:0
  end

(* Allocator bucket: one open region per label, or per (label, size
   class) under the size-segregated policy — large objects (an eighth of
   a region or more) get their own regions so a few big dead arrays
   cannot pin regions full of small live objects (§7.3). *)
let bucket_of t ~label ~bytes =
  match t.cfg.placement with
  | Label_only -> label * 2
  | Size_segregated ->
      if bytes >= t.cfg.region_size / 8 then (label * 2) + 1 else label * 2

let seg_range_of_region t (r : region) =
  let lo = r.idx * t.cfg.region_size / t.cfg.card_segment_size in
  let hi =
    ((r.idx * t.cfg.region_size) + t.cfg.region_size + t.cfg.card_segment_size - 1)
    / t.cfg.card_segment_size
  in
  (lo, hi)

(* Register a freshly placed object in the buckets of every card segment
   it overlaps. Overlap uses the object's unpadded [total_size] — the
   same extent the card scan tests — not the 8-byte-aligned allocation
   size, so bucket membership equals the former binary-search result. *)
let seg_index_register t (r : region) (o : Obj_.t) =
  let lo, hi = seg_range_of_region t r in
  let n = hi - lo in
  if Array.length r.seg_index <> n then r.seg_index <- Array.make n None;
  let gstart = (r.idx * t.cfg.region_size) + o.Obj_.addr in
  let s0 = max lo (gstart / t.cfg.card_segment_size) in
  let s1 =
    min (hi - 1) ((gstart + Obj_.total_size o - 1) / t.cfg.card_segment_size)
  in
  for s = s0 to s1 do
    let bucket =
      match r.seg_index.(s - lo) with
      | Some v -> v
      | None ->
          let v = Vec.create () in
          r.seg_index.(s - lo) <- Some v;
          v
    in
    Vec.push bucket o
  done

let open_region t ~label ~key =
  let idx =
    match Vec.pop t.free_regions with
    | Some idx -> idx
    | None ->
        if t.next_fresh >= Array.length t.regions then raise Out_of_h2_space
        else begin
          let idx = t.next_fresh in
          t.next_fresh <- t.next_fresh + 1;
          idx
        end
  in
  let r = t.regions.(idx) in
  r.label <- label;
  r.open_key <- key;
  r.top <- 0;
  r.live <- false;
  r.deps <- [];
  Vec.clear r.objects;
  Vec.shrink_to_fit r.objects;
  r.buffer_fill <- 0;
  r.seg_index <- [||];
  t.group_parent.(idx) <- idx;
  t.group_live.(idx) <- false;
  t.regions_allocated <- t.regions_allocated + 1;
  Hashtbl.replace t.open_by_key key idx;
  h2_instant t ~name:"region_open"
    [ ("region", Th_trace.Event.Int idx); ("label", Th_trace.Event.Int label) ];
  r
[@@th.raises "Out_of_h2_space"]

let alloc t ?group o ~label =
  (* The placement group keys the allocator bucket (and the region's
     label word): policies that co-locate several labels pass a shared
     group; the default — group = label — reproduces the paper's
     one-label-per-region placement exactly. *)
  let glabel = match group with Some g -> g | None -> label in
  let bytes = align8 (Obj_.total_size o) in
  if bytes > t.cfg.region_size then
    invalid_arg "H2.alloc: object larger than an H2 region";
  let key = bucket_of t ~label:glabel ~bytes in
  let r =
    match Hashtbl.find_opt t.open_by_key key with
    | Some idx when t.regions.(idx).label = glabel
                    && t.regions.(idx).open_key = key
                    && t.regions.(idx).top + bytes <= t.cfg.region_size ->
        t.regions.(idx)
    | Some idx ->
        (* Region full (or was reclaimed and reused): open a fresh one.
           The sealed region's promotion buffer drains with the others in
           the compaction phase. *)
        ignore idx;
        open_region t ~label:glabel ~key
    | None -> open_region t ~label:glabel ~key
  in
  o.Obj_.loc <- Obj_.In_h2;
  o.Obj_.h2_region <- r.idx;
  o.Obj_.addr <- r.top;
  r.top <- r.top + bytes;
  Vec.push r.objects o;
  seg_index_register t r o;
  t.moves <- t.moves + 1;
  t.bytes_moved <- t.bytes_moved + bytes;
  (* Fill the promotion buffer; the compaction phase drains buffers in
     device-friendly batches via {!flush_promotion_buffers}. *)
  r.buffer_fill <- r.buffer_fill + bytes
[@@th.raises "Out_of_h2_space"]

let flush_promotion_buffers t =
  for i = 0 to t.next_fresh - 1 do
    flush_buffer t t.regions.(i)
  done

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)

let clear_live_bits t =
  for i = 0 to t.next_fresh - 1 do
    t.regions.(i).live <- false;
    t.group_live.(i) <- false
  done

let region_is_live t ~region =
  match t.cfg.reclaim_mode with
  | Dependency_lists -> t.regions.(region).live
  | Region_groups -> t.group_live.(uf_find t region)

let mark_live_from_h1 t o =
  let region = o.Obj_.h2_region in
  if region < 0 then invalid_arg "H2.mark_live_from_h1: object not in H2";
  match t.cfg.reclaim_mode with
  | Region_groups -> t.group_live.(uf_find t region) <- true
  | Dependency_lists ->
      let stack = Stack.create () in
      Stack.push region stack;
      while not (Stack.is_empty stack) do
        let i = Stack.pop stack in
        let r = t.regions.(i) in
        if not r.live then begin
          r.live <- true;
          List.iter (fun d -> Stack.push d stack) r.deps
        end
      done

let add_dependency t ~src_region ~dst_region =
  if src_region <> dst_region then
    match t.cfg.reclaim_mode with
    | Region_groups -> uf_union t src_region dst_region
    | Dependency_lists ->
        let r = t.regions.(src_region) in
        if not (List.mem dst_region r.deps) then begin
          r.deps <- dst_region :: r.deps;
          (* A live region that gains a dependency keeps it live within
             this same marking pass. *)
          if r.live && not t.regions.(dst_region).live then begin
            let dummy = t.regions.(dst_region) in
            ignore dummy;
            let stack = Stack.create () in
            Stack.push dst_region stack;
            while not (Stack.is_empty stack) do
              let i = Stack.pop stack in
              let r' = t.regions.(i) in
              if not r'.live then begin
                r'.live <- true;
                List.iter (fun d -> Stack.push d stack) r'.deps
              end
            done
          end
        end

let note_backward_ref t o =
  H2_card_table.mark_dirty t.cards ~gaddr:(gaddr t o)

let free_dead_regions t ~on_free =
  let freed = ref 0 in
  for i = 0 to t.next_fresh - 1 do
    let r = t.regions.(i) in
    if r.label >= 0 && not (region_is_live t ~region:i) then begin
      incr freed;
      h2_instant t ~name:"region_reclaim"
        [
          ("region", Th_trace.Event.Int i);
          ("label", Th_trace.Event.Int r.label);
        ];
      Vec.iter on_free r.objects;
      Vec.push t.samples { live_object_pct = 0.0; live_space_pct = 0.0 };
      (* Reset the allocation pointer and delete the dependency list
         (§3.3); drop cached pages without writeback. *)
      let lo, hi = seg_range_of_region t r in
      H2_card_table.clear_range t.cards ~lo ~hi;
      Page_cache.invalidate_range t.cache ~offset:(i * t.cfg.region_size)
        ~len:t.cfg.region_size;
      (match Hashtbl.find_opt t.open_by_key r.open_key with
      | Some j when j = i -> Hashtbl.remove t.open_by_key r.open_key
      | Some _ | None -> ());
      r.label <- -1;
      r.open_key <- -1;
      r.top <- 0;
      r.deps <- [];
      r.buffer_fill <- 0;
      Vec.clear r.objects;
      Vec.shrink_to_fit r.objects;
      r.seg_index <- [||];
      t.group_parent.(i) <- i;
      Vec.push t.free_regions i;
      t.regions_reclaimed <- t.regions_reclaimed + 1
    end
  done;
  !freed

(* ------------------------------------------------------------------ *)
(* Mutator access                                                      *)

let mutator_read t o =
  t.readback_bytes <- t.readback_bytes + Obj_.total_size o;
  Page_cache.access t.cache ~cat:Clock.Other ~write:false ~offset:(gaddr t o)
    ~len:(Obj_.total_size o)

let mutator_write t o =
  t.rmw_bytes <- t.rmw_bytes + Obj_.total_size o;
  Page_cache.access t.cache ~cat:Clock.Other ~write:true ~offset:(gaddr t o)
    ~len:(Obj_.total_size o);
  (* Kernel writeback: updating a file-backed mapping dirties whole pages
     that are flushed to the device on their own cadence — the
     read-modify-write traffic that makes moving mutable objects to H2
     expensive (§7.2: up to 98 % more device writes). *)
  Device.write t.device ~cat:Clock.Other ~random:true
    ((Obj_.total_size o + 1) / 2);
  Clock.advance t.clock Clock.Other t.costs.Costs.write_barrier_ns;
  note_backward_ref t o

(* ------------------------------------------------------------------ *)
(* Card scanning                                                       *)

let region_of_seg t seg =
  seg * t.cfg.card_segment_size / t.cfg.region_size

(* Objects of [r] overlapping segment [seg]: a direct bucket lookup in
   the region's segment index (formerly a binary search over the
   address-sorted [r.objects]). Buckets preserve allocation order, so the
   visit order — ascending address — is unchanged. *)
let iter_objects_in_seg t (r : region) seg f =
  let lo = r.idx * t.cfg.region_size / t.cfg.card_segment_size in
  let i = seg - lo in
  if i >= 0 && i < Array.length r.seg_index then
    match r.seg_index.(i) with Some bucket -> Vec.iter f bucket | None -> ()

let scan_cards ~major t ~on_object =
  let total_segments =
    if t.next_fresh = 0 then 0
    else (t.next_fresh * t.cfg.region_size) / t.cfg.card_segment_size
  in
  if total_segments > 0 then begin
    (* Examining every card entry of allocated H2 space. Parallel GC
       threads each take their own stripes, so the scan parallelises. *)
    let scan_cost =
      float_of_int total_segments *. t.costs.Costs.card_scan_ns
    in
    Clock.advance t.clock
      (if major then Clock.Major_gc else Clock.Minor_gc)
      (Costs.parallel t.costs ~threads:t.costs.Costs.gc_threads scan_cost);
    let cat = if major then Clock.Major_gc else Clock.Minor_gc in
    let visit seg _state =
      let region = region_of_seg t seg in
      let r = t.regions.(region) in
      if r.label >= 0 then begin
        (* Touching device-resident objects faults their pages in. *)
        Page_cache.access t.cache ~cat ~write:false
          ~offset:(seg * t.cfg.card_segment_size)
          ~len:t.cfg.card_segment_size;
        iter_objects_in_seg t r seg (fun o ->
            Clock.advance t.clock cat
              (Costs.parallel t.costs ~threads:t.costs.Costs.gc_threads
                 t.costs.Costs.card_obj_scan_ns);
            on_object o)
      end
    in
    if major then H2_card_table.iter_major_scan t.cards ~lo:0 ~hi:total_segments visit
    else H2_card_table.iter_minor_scan t.cards ~lo:0 ~hi:total_segments visit
  end

let scan_cards_minor t ~on_object =
  let before = Clock.now_ns t.clock in
  scan_cards ~major:false t ~on_object;
  t.minor_scan_ns <- t.minor_scan_ns +. (Clock.now_ns t.clock -. before)

let scan_cards_major t ~on_object = scan_cards ~major:true t ~on_object

let seg_state_from_objects t (r : region) seg =
  let to_young = ref false and to_old = ref false in
  iter_objects_in_seg t r seg (fun o ->
      Obj_.iter_refs
        (fun child ->
          match child.Obj_.loc with
          | Obj_.Eden | Obj_.Survivor -> to_young := true
          | Obj_.Old -> to_old := true
          | Obj_.In_h2 ->
              (* A former backward reference whose target has since moved
                 to H2 is a newly discovered cross-region reference: it
                 must enter the dependency lists before this card can be
                 cleaned, or the target's region could be reclaimed under
                 a live reference (§4, pointer adjustment). *)
              if child.Obj_.h2_region <> r.idx then
                add_dependency t ~src_region:r.idx
                  ~dst_region:child.Obj_.h2_region
          | Obj_.Freed -> ())
        o);
  if !to_young then H2_card_table.Young_gen
  else if !to_old then H2_card_table.Old_gen
  else H2_card_table.Clean

let recompute_card_states t ~major =
  let total_segments =
    if t.next_fresh = 0 then 0
    else (t.next_fresh * t.cfg.region_size) / t.cfg.card_segment_size
  in
  let recompute seg _state =
    let region = region_of_seg t seg in
    let r = t.regions.(region) in
    if r.label >= 0 then
      H2_card_table.set_state t.cards ~seg (seg_state_from_objects t r seg)
  in
  if total_segments > 0 then begin
    if major then
      H2_card_table.iter_major_scan t.cards ~lo:0 ~hi:total_segments recompute
    else H2_card_table.iter_minor_scan t.cards ~lo:0 ~hi:total_segments recompute
  end

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let device t = t.device

let allocated_regions t = t.next_fresh

let free_region_list t = Vec.to_list t.free_regions

let label_of_region t ~region = t.regions.(region).label

let in_same_group t ~a ~b = uf_find t a = uf_find t b

type region_view = {
  view_idx : int;
  view_label : int;
  view_top : int;
  view_live : bool;
  view_deps : int list;
  view_objects : Obj_.t Vec.t;
}

let iter_region_views t f =
  for i = 0 to t.next_fresh - 1 do
    let r = t.regions.(i) in
    f
      {
        view_idx = r.idx;
        view_label = r.label;
        view_top = r.top;
        view_live = r.live;
        view_deps = r.deps;
        view_objects = r.objects;
      }
  done

(* Corruption plant for the sanitizer's mutation tests: silently drop a
   dependency edge, leaving the heap exactly as a protocol bug would. *)
let debug_remove_dependency t ~src_region ~dst_region =
  let r = t.regions.(src_region) in
  r.deps <- List.filter (fun d -> d <> dst_region) r.deps

let minor_scan_ns t = t.minor_scan_ns

let high_threshold t = t.high

let low_threshold t = t.low

(* Adaptive controller for the move thresholds (the paper leaves dynamic
   thresholds as future work, §7.2). After each major GC: still above the
   high watermark -> move more next time (lower the low threshold);
   comfortably below the low watermark -> move less eagerly (raise it),
   sparing mutable objects the device read-modify-writes. *)
let adapt_thresholds t ~live_ratio =
  if t.cfg.dynamic_thresholds then begin
    match t.low with
    | Some low ->
        if live_ratio > t.high then
          t.low <- Some (Float.max 0.3 (low -. 0.05))
        else if live_ratio < low +. 0.1 then
          t.low <- Some (Float.min (t.high -. 0.1) (low +. 0.05))
    | None -> ()
  end

let used_bytes t =
  let sum = ref 0 in
  for i = 0 to t.next_fresh - 1 do
    let r = t.regions.(i) in
    if r.label >= 0 then sum := !sum + r.top
  done;
  !sum

let iter_objects t f =
  for i = 0 to t.next_fresh - 1 do
    let r = t.regions.(i) in
    if r.label >= 0 then Vec.iter f r.objects
  done

let region_of_object _t (o : Obj_.t) = o.Obj_.h2_region

let region_object_count t ~region = Vec.length t.regions.(region).objects

let stats t =
  let active = ref 0 and used = ref 0 and wasted = ref 0 and deps = ref 0 in
  for i = 0 to t.next_fresh - 1 do
    let r = t.regions.(i) in
    if r.label >= 0 then begin
      incr active;
      used := !used + r.top;
      (* Internal fragmentation: space between top and region end counts
         as waste only for sealed (non-open) regions. *)
      (match Hashtbl.find_opt t.open_by_key r.open_key with
      | Some idx when idx = i -> ()
      | _ -> wasted := !wasted + (t.cfg.region_size - r.top));
      deps := !deps + List.length r.deps
    end
  done;
  {
    regions_allocated = t.regions_allocated;
    regions_reclaimed = t.regions_reclaimed;
    regions_active = !active;
    used_bytes = !used;
    wasted_bytes = !wasted;
    dep_nodes = !deps;
    moves_to_h2 = t.moves;
    bytes_moved = t.bytes_moved;
    readback_bytes = t.readback_bytes;
    rmw_bytes = t.rmw_bytes;
    minor_scan_time_ns = t.minor_scan_ns;
    degraded_moves = t.degraded_moves;
    objects_deferred = t.objects_deferred;
    flush_deferrals = t.flush_deferrals;
  }

let metadata_bytes t =
  let s = stats t in
  H2_card_table.metadata_bytes t.cards
  + (s.regions_active * region_metadata_base_bytes)
  + (s.dep_nodes * dep_node_bytes)

let metadata_bytes_per_tb ~region_size =
  let regions = Size.gib 1024 / region_size in
  regions
  * (region_metadata_base_bytes + (avg_dep_nodes_per_region * dep_node_bytes))

let harvest_region_samples t ~is_live =
  let out = ref (Vec.to_list t.samples) in
  for i = 0 to t.next_fresh - 1 do
    let r = t.regions.(i) in
    if r.label >= 0 && Vec.length r.objects > 0 then begin
      let n = Vec.length r.objects in
      let live = ref 0 and live_bytes = ref 0 in
      Vec.iter
        (fun o ->
          if is_live o then begin
            incr live;
            live_bytes := !live_bytes + Obj_.total_size o
          end)
        r.objects;
      out :=
        {
          live_object_pct = 100.0 *. float_of_int !live /. float_of_int n;
          live_space_pct =
            100.0 *. float_of_int !live_bytes /. float_of_int t.cfg.region_size;
        }
        :: !out
    end
  done;
  !out
