(** The H2 card table (§3.4).

    A DRAM byte array with one entry per fixed-size H2 card segment. Each
    entry is in one of four states: [Clean] (no backward references),
    [Dirty] (mutator updated an object in the segment), [Young_gen]
    (segment only references the H1 young generation) or [Old_gen]
    (segment only references the H1 old generation). Minor GC scans
    [Dirty] and [Young_gen] segments; major GC additionally scans
    [Old_gen] segments.

    The table is divided into slices and stripes for contention-free
    parallel scanning. With [stripe_aligned] (TeraHeap's design: stripe
    size = region size, objects never span regions), boundary cards behave
    like any other card. Without it (vanilla-JVM behaviour), a boundary
    card that ever becomes dirty is never cleaned and is re-scanned by
    every GC. *)

type state = Clean | Dirty | Young_gen | Old_gen

type event = Barrier_dirty | Recompute of state | Bulk_clear
(** Why a card changed state: the mutator's post-write barrier
    ([Barrier_dirty], always lands [Dirty]), a GC recompute ([Recompute]
    carries the state the collector {e requested} — a sticky dirty
    boundary card may lawfully stay [Dirty] instead), or bulk region
    reclamation ([Bulk_clear], always lands [Clean]). *)

type t

val create :
  ?segment_size:int ->
  ?stripe_aligned:bool ->
  ?stripe_size:int ->
  capacity_bytes:int ->
  unit ->
  t
(** [segment_size] defaults to 4 KiB; [stripe_aligned] defaults to [true];
    [stripe_size] defaults to the H2 region size passed by {!H2.create}. *)

val segment_size : t -> int

val num_segments : t -> int

val segment_of : t -> gaddr:int -> int
(** Segment index of a global H2 address. *)

val state : t -> seg:int -> state

val set_state : t -> seg:int -> state -> unit
(** Respects stickiness of dirty boundary cards in unaligned mode: an
    attempt to clean such a card leaves it [Dirty]. *)

val mark_dirty : t -> gaddr:int -> unit
(** Post-write-barrier entry point. *)

val iter_minor_scan : t -> lo:int -> hi:int -> (int -> state -> unit) -> unit
(** Iterate segments in state [Dirty] or [Young_gen] whose index lies in
    [lo, hi); minor GC path. *)

val iter_major_scan : t -> lo:int -> hi:int -> (int -> state -> unit) -> unit
(** Same, plus [Old_gen] segments; major GC path. *)

val clear_range : t -> lo:int -> hi:int -> unit
(** Reset segments to [Clean] (bulk region reclamation). Boundary-card
    stickiness does not apply: the backing region is dead. *)

val set_transition_hook :
  t -> (seg:int -> before:state -> after:state -> event -> unit) option -> unit
(** Install (or remove) an observer called on every state change —
    {!mark_dirty} and {!set_state} also report no-op transitions, so the
    observer sees suppressed sticky-boundary cleans. Used by the
    {!Th_verify} sanitizer to check transition legality online. *)

val set_trace_clock : t -> Th_sim.Clock.t option -> unit
(** Give the table a clock to timestamp and emit card-transition trace
    instants through (when that clock has a tracer attached). Unlike the
    observer hook, tracing reports only real state changes — sticky
    no-op transitions stay off the ring. Installed by {!H2.create};
    independent of {!set_transition_hook} so the {!Th_verify} sanitizer
    and the flight recorder can coexist. *)

val non_clean_count : t -> int

val metadata_bytes : t -> int
(** DRAM footprint of the table itself (one byte per segment). *)
