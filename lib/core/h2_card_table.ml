type state = Clean | Dirty | Young_gen | Old_gen

(* The three ways a card changes state, distinguished so an observer can
   judge the legality of each transition. [Recompute] carries the state
   the collector *asked* for — under boundary-card stickiness the card
   may lawfully stay [Dirty] instead. *)
type event = Barrier_dirty | Recompute of state | Bulk_clear

type t = {
  segment_size : int;
  stripe_aligned : bool;
  stripe_size : int;
  cards : Bytes.t;
  mutable non_clean : int;
  mutable on_transition :
    (seg:int -> before:state -> after:state -> event -> unit) option;
  mutable trace_clock : Th_sim.Clock.t option;
}

let byte_of_state = function
  | Clean -> '\000'
  | Dirty -> '\001'
  | Young_gen -> '\002'
  | Old_gen -> '\003'

let state_of_byte = function
  | '\000' -> Clean
  | '\001' -> Dirty
  | '\002' -> Young_gen
  | '\003' -> Old_gen
  | _ -> invalid_arg "H2_card_table: corrupt card state byte"

let create ?(segment_size = 4096) ?(stripe_aligned = true)
    ?(stripe_size = 0) ~capacity_bytes () =
  if segment_size <= 0 then invalid_arg "H2_card_table.create: segment_size";
  let n = max 1 ((capacity_bytes + segment_size - 1) / segment_size) in
  let stripe_size = if stripe_size <= 0 then capacity_bytes else stripe_size in
  {
    segment_size;
    stripe_aligned;
    stripe_size;
    cards = Bytes.make n '\000';
    non_clean = 0;
    on_transition = None;
    trace_clock = None;
  }

let set_transition_hook t f = t.on_transition <- f

let set_trace_clock t clock = t.trace_clock <- clock

let state_name = function
  | Clean -> "clean"
  | Dirty -> "dirty"
  | Young_gen -> "young"
  | Old_gen -> "old"

let trace_transition t ~seg ~before ~after ev =
  (* Only real state changes are recorded — the observer hook still sees
     suppressed sticky-boundary no-ops, but tracing them would swamp the
     ring with barrier noise. *)
  if before <> after then
    match t.trace_clock with
    | None -> ()
    | Some clock -> (
        match Th_sim.Clock.tracer clock with
        | None -> ()
        | Some tr ->
            let name =
              match ev with
              | Barrier_dirty -> "barrier_dirty"
              | Recompute _ -> "recompute"
              | Bulk_clear -> "bulk_clear"
            in
            Th_trace.Recorder.instant tr
              ~ts:(Th_sim.Clock.now_ns clock)
              ~cat:"card" ~name
              ~args:
                [
                  ("seg", Th_trace.Event.Int seg);
                  ("before", Th_trace.Event.Str (state_name before));
                  ("after", Th_trace.Event.Str (state_name after));
                ]
              ())

let notify t ~seg ~before ~after ev =
  trace_transition t ~seg ~before ~after ev;
  match t.on_transition with
  | None -> ()
  | Some f -> f ~seg ~before ~after ev

let segment_size t = t.segment_size

let num_segments t = Bytes.length t.cards

let segment_of t ~gaddr =
  let s = gaddr / t.segment_size in
  if s < 0 || s >= Bytes.length t.cards then
    invalid_arg "H2_card_table.segment_of: address out of range";
  s

let state t ~seg = state_of_byte (Bytes.get t.cards seg)

(* In the unaligned (vanilla) layout, the first and last card of each
   stripe may be touched by two GC threads, so the collector never cleans
   them once dirty (§3.4). *)
let is_boundary t seg =
  let segs_per_stripe = max 1 (t.stripe_size / t.segment_size) in
  let pos = seg mod segs_per_stripe in
  pos = 0 || pos = segs_per_stripe - 1

let raw_set t seg st =
  let before = Bytes.get t.cards seg in
  let after = byte_of_state st in
  if before <> after then begin
    if before = '\000' then t.non_clean <- t.non_clean + 1;
    if after = '\000' then t.non_clean <- t.non_clean - 1;
    Bytes.set t.cards seg after
  end

let set_state t ~seg st =
  let before = state t ~seg in
  let sticky =
    (not t.stripe_aligned) && is_boundary t seg && before = Dirty && st <> Dirty
  in
  if not sticky then raw_set t seg st;
  notify t ~seg ~before ~after:(state t ~seg) (Recompute st)

let mark_dirty t ~gaddr =
  let seg = segment_of t ~gaddr in
  let before = state t ~seg in
  raw_set t seg Dirty;
  notify t ~seg ~before ~after:Dirty Barrier_dirty

let iter_scan ~include_old t ~lo ~hi f =
  let hi = min hi (Bytes.length t.cards) in
  for seg = max 0 lo to hi - 1 do
    match state_of_byte (Bytes.unsafe_get t.cards seg) with
    | Clean -> ()
    | Dirty -> f seg Dirty
    | Young_gen -> f seg Young_gen
    | Old_gen -> if include_old then f seg Old_gen
  done

let iter_minor_scan t ~lo ~hi f = iter_scan ~include_old:false t ~lo ~hi f

let iter_major_scan t ~lo ~hi f = iter_scan ~include_old:true t ~lo ~hi f

let clear_range t ~lo ~hi =
  let hi = min hi (Bytes.length t.cards) in
  for seg = max 0 lo to hi - 1 do
    let before = state t ~seg in
    raw_set t seg Clean;
    if before <> Clean then notify t ~seg ~before ~after:Clean Bulk_clear
  done

let non_clean_count t = t.non_clean

let metadata_bytes t = Bytes.length t.cards
