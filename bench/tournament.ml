(* Policy tournament: every H2 placement policy runs every Spark and
   Giraph workload under identical setups, reporting end-to-end time, GC
   time and the H2 traffic the policies compete on (mutator read-back
   and read-modify-write), with the two-pass oracle as the per-workload
   upper bound. The oracle and lifetime entrants each run a recording/
   profiling pre-pass inside their cell; the lifetime profile is round-
   tripped through its on-disk serialization on the way, so the bench
   itself exercises the persistence format the tests lock down.

   Subset selection for smoke runs and tests (read once at plan-build
   time, before any cell executes):
     TH_TOURNAMENT_WORKLOADS  comma list of framework:name entries,
                              e.g. "spark:PR,giraph:BFS" (case-
                              insensitive; Spark and Giraph both have an
                              SSSP, hence the framework prefix)
     TH_TOURNAMENT_SCALE      dataset scale factor (default 1.0)       *)

open Th_sim
open Runners
module Policy = Th_policy.Policy
module Profile = Th_policy.Profile

type workload = Spark of Spark_profiles.t | Giraph of Giraph_profiles.t

let workload_name = function
  | Spark p -> "Spark-" ^ p.Spark_profiles.name
  | Giraph p -> "Giraph-" ^ p.Giraph_profiles.name

(* The env-filter key: "spark:pr", "giraph:bfs". *)
let workload_key = function
  | Spark p -> "spark:" ^ String.lowercase_ascii p.Spark_profiles.name
  | Giraph p -> "giraph:" ^ String.lowercase_ascii p.Giraph_profiles.name

let all_workloads =
  List.map (fun p -> Spark p) Spark_profiles.all
  @ List.map (fun p -> Giraph p) Giraph_profiles.all

let selected_workloads () =
  match Sys.getenv_opt "TH_TOURNAMENT_WORKLOADS" with
  | None | Some "" -> all_workloads
  | Some spec ->
      let wanted =
        String.split_on_char ',' spec
        |> List.map (fun s -> String.lowercase_ascii (String.trim s))
        |> List.filter (fun s -> s <> "")
      in
      let found =
        List.filter
          (fun w -> List.exists (String.equal (workload_key w)) wanted)
          all_workloads
      in
      if found = [] then
        invalid_arg
          (Printf.sprintf
             "TH_TOURNAMENT_WORKLOADS=%S matches no workload (keys: %s)" spec
             (String.concat ", " (List.map workload_key all_workloads)));
      found

let dataset_scale () =
  match Sys.getenv_opt "TH_TOURNAMENT_SCALE" with
  | None | Some "" -> 1.0
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0.0 -> f
      | Some _ | None ->
          invalid_arg
            (Printf.sprintf "TH_TOURNAMENT_SCALE=%S is not a positive number"
               s))

type entrant = Threshold | Lifetime | Gang | Two_q | Oracle

let entrants = [ Threshold; Lifetime; Gang; Two_q; Oracle ]

let entrant_name = function
  | Threshold -> "threshold"
  | Lifetime -> "lifetime"
  | Gang -> "gang"
  | Two_q -> "2q"
  | Oracle -> "oracle"

(* Pre-pass entrants pay for two full runs. *)
let entrant_runs = function
  | Lifetime | Oracle -> 2.0
  | Threshold | Gang | Two_q -> 1.0

let run_with ~scale w policy =
  match w with
  | Spark p -> run_spark ~dataset_scale:scale ~policy Th p
  | Giraph p -> run_giraph ~scale ~policy G_th p

(* One tournament cell: construct the policy (and its pre-pass) inside
   the thunk — policies own unsynchronised mutable state, so each cell
   gets a fresh one on its own worker domain. *)
let run_cell ~scale w entrant =
  match entrant with
  | Threshold -> run_with ~scale w Policy.threshold
  | Lifetime ->
      let prof_policy, profile = Policy.profiler () in
      ignore (run_with ~scale w prof_policy : Run_result.t);
      let profile =
        match Profile.of_string (Profile.to_string profile) with
        | Ok p -> p
        | Error e -> failwith ("tournament: profile round-trip failed: " ^ e)
      in
      run_with ~scale w (Policy.lifetime profile)
  | Gang -> run_with ~scale w (Policy.gang_locality ())
  | Two_q -> run_with ~scale w (Policy.two_q ())
  | Oracle ->
      let rec_policy, future = Policy.recording () in
      ignore (run_with ~scale w rec_policy : Run_result.t);
      run_with ~scale w (Policy.oracle future)

let workload_cost ~scale w =
  match w with
  | Spark p -> spark_cost ~dataset_scale:scale p
  | Giraph p -> giraph_cost ~scale p

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let mib b = float_of_int b /. 1048576.0

let gc_seconds (r : Run_result.t) =
  match r.Run_result.breakdown with
  | Some b -> (b.Clock.minor_gc_ns +. b.Clock.major_gc_ns) /. 1e9
  | None -> nan

let h2_readback (r : Run_result.t) =
  match r.Run_result.h2_stats with
  | Some s -> s.Th_core.H2.readback_bytes
  | None -> 0

let h2_rmw (r : Run_result.t) =
  match r.Run_result.h2_stats with
  | Some s -> s.Th_core.H2.rmw_bytes
  | None -> 0

let h2_moved (r : Run_result.t) =
  match r.Run_result.h2_stats with
  | Some s -> s.Th_core.H2.bytes_moved
  | None -> 0

let dev_read (r : Run_result.t) =
  match r.Run_result.h2_device with
  | Some d -> d.Th_device.Device.bytes_read
  | None -> 0

let print_workload w (results : (entrant * Run_result.t) list) =
  Printf.printf "\n--- Tournament / %s ---\n" (workload_name w);
  Printf.printf "%-10s %9s %8s %12s %9s %11s %9s\n" "policy" "total(s)"
    "gc(s)" "readback(MB)" "rmw(MB)" "devread(MB)" "moved(MB)";
  List.iter
    (fun (e, r) ->
      Printf.printf "%-10s %9.2f %8.2f %12.1f %9.1f %11.1f %9.1f\n"
        (entrant_name e) (total_seconds r) (gc_seconds r)
        (mib (h2_readback r))
        (mib (h2_rmw r))
        (mib (dev_read r))
        (mib (h2_moved r)))
    results;
  match List.assoc_opt Oracle results with
  | None -> ()
  | Some o ->
      let ot = total_seconds o and orb = h2_readback o in
      List.iter
        (fun (e, r) ->
          if e <> Oracle then
            Printf.printf
              "  oracle gap: %-10s %+6.1f%% total, %+9.1f MB readback\n"
              (entrant_name e)
              ((total_seconds r -. ot) /. ot *. 100.0)
              (mib (h2_readback r - orb)))
        results

let plan () =
  let b = Plan.create () in
  let scale = dataset_scale () in
  let workloads = selected_workloads () in
  let groups =
    Plan.grouped_costed b ~label:"tournament"
      (List.map
         (fun w ->
           let c = workload_cost ~scale w in
           ( w,
             List.map
               (fun e ->
                 (c *. entrant_runs e, fun () -> run_cell ~scale w e))
               entrants ))
         workloads)
  in
  Plan.seal b ~render:(fun () ->
      List.iter
        (fun (w, results) -> print_workload w (List.combine entrants results))
        (Plan.get groups))
