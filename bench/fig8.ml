(* Figure 8: TeraHeap vs the newer collectors — Parallel Scavenge on
   OpenJDK11 and G1 on OpenJDK17 — for the ten Spark workloads at the
   Table-3 DRAM. G1 OOMs on SVM, BC and RL due to humongous-object
   fragmentation (§7.1). *)

open Runners
module Report = Th_metrics.Report

let plan () =
  let b = Plan.create () in
  let groups =
    Plan.grouped_costed b ~label:"fig8"
      (List.map
         (fun (p : Spark_profiles.t) ->
           let c = spark_cost p in
           ( p,
             [
               (c, fun () -> run_spark Sd p);
               (c, fun () -> run_spark Ps11 p);
               (c, fun () -> run_spark G1 p);
               (c, fun () -> run_spark Th p);
             ] ))
         Spark_profiles.all)
  in
  Plan.seal b ~render:(fun () ->
      List.iter
        (fun ((p : Spark_profiles.t), results) ->
          Report.print_breakdown_table
            ~title:
              (Printf.sprintf "Fig 8 / %s: PS8 vs PS11 vs G1 vs TeraHeap"
                 p.Spark_profiles.name)
            (rows_of_results results))
        (Plan.get groups))
