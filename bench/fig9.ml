(* Figure 9: effect of the h2_move transfer hint (a) and of the low
   transfer threshold (b) on Giraph. Without the hint ("NH"), TeraHeap
   can only use the high-threshold mechanism and moves objects that are
   still mutable, paying device read-modify-writes (§7.2). The low
   threshold ("L") bounds how much a pressure-triggered move transfers. *)

open Runners
module Report = Th_metrics.Report
module H2 = Th_core.H2

let with_hint = H2.{ default_config with low_threshold = None }

let no_hint =
  H2.{ default_config with use_move_hint = false; low_threshold = None }

let high_only = with_hint

let high_and_low = H2.{ default_config with low_threshold = Some 0.5 }

let part_a b =
  let groups =
    Plan.grouped_costed b ~label:"fig9a"
      (List.map
         (fun (p : Giraph_profiles.t) ->
           let c = giraph_cost p in
           ( p,
             [
               (c, fun () -> run_giraph ~h2_config:no_hint G_th p);
               (c, fun () -> run_giraph ~h2_config:with_hint G_th p);
             ] ))
         Giraph_profiles.all)
  in
  fun () ->
    List.iter
      (fun ((p : Giraph_profiles.t), results) ->
        let nh, h = pair2 ~what:"fig9a" results in
        Report.print_breakdown_table
          ~title:
            (Printf.sprintf "Fig 9a / Giraph-%s: no-hint (NH) vs hint (H)"
               p.Giraph_profiles.name)
          (rows_of_results
             [
               { nh with Run_result.label = "NH (threshold only)" };
               { h with Run_result.label = "H (h2_move hint)" };
             ]);
        Printf.printf "   majors NH=%d H=%d   minors NH=%d H=%d\n"
          nh.Run_result.major_gcs h.Run_result.major_gcs
          nh.Run_result.minor_gcs h.Run_result.minor_gcs)
      (Plan.get groups)

(* Figure 9b uses a larger dataset (91 GB) that trips the high-threshold
   mechanism even with hints enabled. *)
let part_b b =
  let groups =
    Plan.grouped_costed b ~label:"fig9b"
      (List.map
         (fun (p : Giraph_profiles.t) ->
           let scale = 91.0 /. float_of_int p.Giraph_profiles.dataset_gb in
           let h1_gb = 5 * p.Giraph_profiles.th_h1_gb / 4 in
           let c = giraph_cost ~scale p in
           ( p,
             [
               ( c,
                 fun () -> run_giraph ~scale ~h1_gb ~h2_config:high_only G_th p
               );
               ( c,
                 fun () ->
                   run_giraph ~scale ~h1_gb ~h2_config:high_and_low G_th p );
             ] ))
         [ Giraph_profiles.pagerank; Giraph_profiles.sssp ])
  in
  fun () ->
    List.iter
      (fun ((p : Giraph_profiles.t), results) ->
        let nl, l = pair2 ~what:"fig9b" results in
        Report.print_breakdown_table
          ~title:
            (Printf.sprintf
               "Fig 9b / Giraph-%s (91GB): no-low (NL) vs low threshold (L)"
               p.Giraph_profiles.name)
          (rows_of_results
             [
               { nl with Run_result.label = "NL (high only)" };
               { l with Run_result.label = "L (high+low 50%)" };
             ]))
      (Plan.get groups)

let plan () =
  let b = Plan.create () in
  let render_a = part_a b in
  let render_b = part_b b in
  Plan.seal b ~render:(fun () ->
      render_a ();
      render_b ())
