(* Figure 6: TeraHeap vs Spark-SD (10 workloads) and vs Giraph-OOC
   (5 workloads) under the Figure-6 DRAM sweep, on the NVMe server.
   Normalized execution-time breakdowns; missing bars are OOM.

   Every (workload, system, DRAM) cell is an independent job carrying a
   DRAM x iterations cost hint; the whole sweep joins the harness's
   global batch and the tables render serially from the ordered
   results. *)

open Runners
module Report = Th_metrics.Report

let plan () =
  let b = Plan.create () in
  let spark =
    Plan.grouped_costed b ~label:"fig6/spark"
      (List.map
         (fun (p : Spark_profiles.t) ->
           let cells =
             List.map
               (fun dram ->
                 (spark_cost ~dram p, fun () -> run_spark ~dram Sd p))
               p.Spark_profiles.sd_dram_gb
             @ List.map
                 (fun dram ->
                   (spark_cost ~dram p, fun () -> run_spark ~dram Th p))
                 p.Spark_profiles.th_dram_gb
           in
           (p, cells))
         Spark_profiles.all)
  in
  let giraph =
    Plan.grouped_costed b ~label:"fig6/giraph"
      (List.map
         (fun (p : Giraph_profiles.t) ->
           ( p,
             [
               ( giraph_cost ~small_dram:true p,
                 fun () -> run_giraph ~small_dram:true Ooc p );
               (giraph_cost p, fun () -> run_giraph Ooc p);
               ( giraph_cost ~small_dram:true p,
                 fun () -> run_giraph ~small_dram:true G_th p );
               (giraph_cost p, fun () -> run_giraph G_th p);
             ] ))
         Giraph_profiles.all)
  in
  Plan.seal b ~render:(fun () ->
      List.iter
        (fun ((p : Spark_profiles.t), results) ->
          Report.print_breakdown_table
            ~title:
              (Printf.sprintf "Fig 6 / Spark-%s (normalized)"
                 p.Spark_profiles.name)
            (rows_of_results results))
        (Plan.get spark);
      List.iter
        (fun ((p : Giraph_profiles.t), results) ->
          Report.print_breakdown_table
            ~title:
              (Printf.sprintf "Fig 6 / Giraph-%s (normalized)"
                 p.Giraph_profiles.name)
            (rows_of_results results))
        (Plan.get giraph))
