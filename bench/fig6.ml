(* Figure 6: TeraHeap vs Spark-SD (10 workloads) and vs Giraph-OOC
   (5 workloads) under the Figure-6 DRAM sweep, on the NVMe server.
   Normalized execution-time breakdowns; missing bars are OOM.

   Every (workload, system, DRAM) cell is an independent job: the whole
   sweep is submitted to the Domain pool in one batch and the tables are
   rendered serially from the ordered results. *)

open Runners
module Report = Th_metrics.Report

let spark () =
  let groups =
    List.map
      (fun (p : Spark_profiles.t) ->
        let cells =
          List.map
            (fun dram () -> run_spark ~dram Sd p)
            p.Spark_profiles.sd_dram_gb
          @ List.map
              (fun dram () -> run_spark ~dram Th p)
              p.Spark_profiles.th_dram_gb
        in
        (p, cells))
      Spark_profiles.all
  in
  List.iter
    (fun ((p : Spark_profiles.t), results) ->
      Report.print_breakdown_table
        ~title:
          (Printf.sprintf "Fig 6 / Spark-%s (normalized)" p.Spark_profiles.name)
        (rows_of_results results))
    (pmap_grouped groups)

let giraph () =
  let groups =
    List.map
      (fun (p : Giraph_profiles.t) ->
        ( p,
          [
            (fun () -> run_giraph ~small_dram:true Ooc p);
            (fun () -> run_giraph Ooc p);
            (fun () -> run_giraph ~small_dram:true G_th p);
            (fun () -> run_giraph G_th p);
          ] ))
      Giraph_profiles.all
  in
  List.iter
    (fun ((p : Giraph_profiles.t), results) ->
      Report.print_breakdown_table
        ~title:
          (Printf.sprintf "Fig 6 / Giraph-%s (normalized)"
             p.Giraph_profiles.name)
        (rows_of_results results))
    (pmap_grouped groups)

let run () =
  spark ();
  giraph ()
