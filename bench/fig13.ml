(* Figure 13: performance scaling with (a) the number of mutator threads
   (4/8/16, normalized to 8) and (b) the dataset size, for Spark-CC,
   Spark-LR and Giraph-CDLP. *)

open Runners
module Report = Th_metrics.Report

let threads_list = [ 4; 8; 16 ]

let norm times =
  match times with
  | [ _; t8; _ ] ->
      List.map (fun t -> if Float.is_nan t then "OOM" else Printf.sprintf "%.2f" (t /. t8)) times
  | _ -> List.map (fun _ -> "?") times

let part_a b =
  let cc = Spark_profiles.connected_components in
  let lr = Spark_profiles.linear_regression in
  let cdlp = Giraph_profiles.cdlp in
  let spark_cells system p =
    List.map
      (fun threads ->
        (spark_cost p, fun () -> total_seconds (run_spark ~threads system p)))
      threads_list
  in
  let giraph_cells system p =
    List.map
      (fun threads ->
        (giraph_cost p, fun () -> total_seconds (run_giraph ~threads system p)))
      threads_list
  in
  let groups =
    Plan.grouped_costed b ~label:"fig13a"
      [
        ("Spark-SD CC", spark_cells Sd cc);
        ("TeraHeap CC", spark_cells Th cc);
        ("Spark-SD LR", spark_cells Sd lr);
        ("TeraHeap LR", spark_cells Th lr);
        ("Giraph-OOC CDLP", giraph_cells Ooc cdlp);
        ("TeraHeap CDLP", giraph_cells G_th cdlp);
      ]
  in
  fun () ->
    Report.print_series
      ~title:"Fig 13a: scaling with mutator threads (normalized to 8 threads)"
      ~header:("configuration" :: List.map string_of_int threads_list)
      (List.map (fun (label, times) -> label :: norm times) (Plan.get groups))

(* Larger datasets: CC 84 -> ~2.3x, LR 70 -> ~3.7x, CDLP 85 -> ~1.07x
   (the paper's 32->73, 64->256, 25->91 GB pairs). TeraHeap H1 grows with
   the dataset as in the paper's large-dataset configurations. *)
let part_b b =
  let improvement native th =
    if Float.is_nan native then "native OOM"
    else Report.pct ((native -. th) /. native)
  in
  let cc = Spark_profiles.connected_components in
  let lr = Spark_profiles.linear_regression in
  let cdlp = Giraph_profiles.cdlp in
  (* Each case is a native/TeraHeap pair of cells at one dataset scale. *)
  let spark_cells p scale dram_mult =
    let dram = int_of_float (float_of_int (default_dram p) *. dram_mult) in
    let c = spark_cost ~dram ~dataset_scale:scale p in
    [
      ( c,
        fun () -> total_seconds (run_spark ~dram ~dataset_scale:scale Sd p) );
      ( c,
        fun () -> total_seconds (run_spark ~dram ~dataset_scale:scale Th p) );
    ]
  in
  let giraph_cells p scale h1_mult =
    let h1_gb =
      int_of_float (float_of_int p.Giraph_profiles.th_h1_gb *. h1_mult)
    in
    let c = giraph_cost ~scale p in
    [
      (c, fun () -> total_seconds (run_giraph ~scale Ooc p));
      (c, fun () -> total_seconds (run_giraph ~scale ~h1_gb G_th p));
    ]
  in
  let groups =
    Plan.grouped_costed b ~label:"fig13b"
      [
        ("Spark-CC", spark_cells cc 1.0 1.0 @ spark_cells cc 2.3 2.3);
        ("Spark-LR", spark_cells lr 1.0 1.0 @ spark_cells lr 2.5 2.5);
        ("Giraph-CDLP", giraph_cells cdlp 1.0 1.0 @ giraph_cells cdlp 2.5 2.5);
      ]
  in
  fun () ->
    let rows =
      List.map
        (fun (label, times) ->
          match times with
          | [ n1; t1; n2; t2 ] -> [ label; improvement n1 t1; improvement n2 t2 ]
          | _ -> [ label; "?"; "?" ])
        (Plan.get groups)
    in
    Report.print_series
      ~title:"Fig 13b: TeraHeap improvement vs native at 1x and ~2.5x dataset"
      ~header:[ "workload"; "baseline size"; "large size" ]
      rows

let plan () =
  let b = Plan.create () in
  let render_a = part_a b in
  let render_b = part_b b in
  Plan.seal b ~render:(fun () ->
      render_a ();
      render_b ())
