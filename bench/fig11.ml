(* Figure 11: (a) H2-related minor-GC time for card segment sizes from
   512 B to 16 KiB (normalized to 512 B), Giraph; (b) major-GC time per
   phase, Giraph-OOC vs TeraHeap. *)

open Runners
module H2 = Th_core.H2
module Report = Th_metrics.Report
module Gc_stats = Th_psgc.Gc_stats
open Th_sim

let segment_sizes = [ 512; 1024; 4096; 8192; 16384 ]

(* Figure 11a plots the H2 component of minor GC (card scanning and
   backward-reference processing), not whole minor-GC pauses. *)
let h2_minor_seconds (r : Run_result.t) =
  match r.Run_result.h2_stats with
  | Some s -> s.H2.minor_scan_time_ns /. 1e9
  | None -> nan

let part_a b =
  let groups =
    Plan.grouped_costed b ~label:"fig11a"
      (List.map
         (fun (p : Giraph_profiles.t) ->
           ( p,
             List.map
               (fun seg ->
                 ( giraph_cost p,
                   fun () ->
                     let cfg =
                       { H2.default_config with H2.card_segment_size = seg }
                     in
                     h2_minor_seconds (run_giraph ~h2_config:cfg G_th p) ))
               segment_sizes ))
         Giraph_profiles.all)
  in
  fun () ->
    let rows =
      List.map
        (fun ((p : Giraph_profiles.t), times) ->
          let base = List.hd times in
          p.Giraph_profiles.name
          :: List.map (fun t -> Printf.sprintf "%.2f" (t /. base)) times)
        (Plan.get groups)
    in
    Report.print_series
      ~title:
        "Fig 11a: minor GC time vs H2 card segment size (normalized to 512B)"
      ~header:("workload" :: List.map (fun s -> Size.to_string s) segment_sizes)
      rows

let phase_row label (r : Run_result.t) =
  match r.Run_result.gc_stats with
  | None -> [ label; "OOM"; ""; ""; ""; "" ]
  | Some stats ->
      let ph = Gc_stats.phase_totals stats in
      let s ns = Printf.sprintf "%.4f" (ns /. 1e9) in
      [
        label;
        s ph.Gc_stats.marking_ns;
        s ph.Gc_stats.precompact_ns;
        s ph.Gc_stats.adjust_ns;
        s ph.Gc_stats.compact_ns;
        s
          (ph.Gc_stats.marking_ns +. ph.Gc_stats.precompact_ns
          +. ph.Gc_stats.adjust_ns +. ph.Gc_stats.compact_ns);
      ]

let part_b b =
  let groups =
    Plan.grouped_costed b ~label:"fig11b"
      (List.map
         (fun (p : Giraph_profiles.t) ->
           let c = giraph_cost p in
           ( p,
             [
               (c, fun () -> run_giraph Ooc p);
               (c, fun () -> run_giraph G_th p);
             ] ))
         Giraph_profiles.all)
  in
  fun () ->
    List.iter
      (fun ((p : Giraph_profiles.t), results) ->
        let ooc, th = pair2 ~what:"fig11" results in
        Report.print_series
          ~title:
            (Printf.sprintf "Fig 11b / Giraph-%s: major GC phases (s)"
               p.Giraph_profiles.name)
          ~header:
            [ "system"; "marking"; "precompact"; "adjust"; "compact"; "total" ]
          [ phase_row "Giraph-OOC" ooc; phase_row "TeraHeap" th ])
      (Plan.get groups)

let plan () =
  let b = Plan.create () in
  let render_a = part_a b in
  let render_b = part_b b in
  Plan.seal b ~render:(fun () ->
      render_a ();
      render_b ())
