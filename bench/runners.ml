(* Shared helpers for the per-figure experiment harnesses. *)

open Th_sim
module Setups = Th_baselines.Setups
module Spark_profiles = Th_workloads.Spark_profiles
module Giraph_profiles = Th_workloads.Giraph_profiles
module Spark_driver = Th_workloads.Spark_driver
module Giraph_driver = Th_workloads.Giraph_driver
module Run_result = Th_workloads.Run_result
module Report = Th_metrics.Report
module Runtime = Th_psgc.Runtime
module Rt = Th_psgc.Rt
module Gc_stats = Th_psgc.Gc_stats
module H2 = Th_core.H2
module Device = Th_device.Device

module Pool = Th_exec.Pool
module Scheduler = Th_exec.Scheduler
module Plan = Th_exec.Plan

(* The harness's work-stealing scheduler, installed once by [Main] (or
   left unset by other entry points, in which case everything runs
   serially in-place). Every experiment cell builds its own
   clock/heap/device stack inside its thunk, so cells are independent
   jobs; results come back in submission order, keeping all printing
   serial and deterministic. *)
let pool : Scheduler.t option ref = ref None

let set_pool p = pool := Some p

let jobs () = match !pool with Some p -> Scheduler.jobs p | None -> 1

(* Deterministic base seed for the randomized (Giraph) drivers; settable
   via --seed. [None] keeps each driver's built-in default. *)
let giraph_seed : int64 option ref = ref None

let pmap (thunks : (unit -> 'a) list) : 'a list =
  match !pool with
  | Some p -> Scheduler.run_thunks p thunks
  | None -> List.map (fun f -> f ()) thunks

(* Run every cell of every group through the pool as ONE batch (maximum
   parallelism across groups), then hand the results back regrouped per
   key, in order. The regroup is a single indexed pass — the old
   repeated filteri split was quadratic in the total cell count, which
   matters now that cross-section batches reach ~100 cells. *)
let pmap_grouped (groups : ('k * (unit -> 'a) list) list) : ('k * 'a list) list
    =
  let results = Array.of_list (pmap (List.concat_map snd groups)) in
  let next = ref 0 in
  List.map
    (fun (key, cells) ->
      let n = List.length cells in
      let base = !next in
      next := base + n;
      (key, List.init n (fun i -> results.(base + i))))
    groups

(* Destructure the exactly-two-results shape every A/B experiment uses.
   A malformed cell batch is a harness bug; name the figure so the error
   says which one. *)
let pair2 ~what = function
  | [ a; b ] -> (a, b)
  | rs ->
      invalid_arg
        (Printf.sprintf "%s: expected exactly 2 pool results, got %d" what
           (List.length rs))

let costs ?(threads = 8) () =
  Costs.with_mutator_threads Setups.default_costs threads

(* The "Table 3" DRAM configuration of a Spark workload: the largest
   TeraHeap point of Figure 6 (dataset-sized DRAM). *)
let default_dram (p : Spark_profiles.t) =
  List.fold_left max 0 p.Spark_profiles.th_dram_gb

let heap_gb_of_dram dram = dram - Spark_profiles.dr2_gb

(* Spark-MO sizes its heap as the minimum that fits all cached data
   on-heap (§6), with headroom for the old generation to hold it. *)
let mo_heap_gb (p : Spark_profiles.t) =
  let cached =
    p.Spark_profiles.cached_fraction
    *. float_of_int p.Spark_profiles.dataset_gb
  in
  max 24 (int_of_float (cached *. 2.2))

type spark_system =
  | Sd
  | Sd_nvm
  | Mo
  | Ps11
  | G1
  | Panthera
  | Th
  | Th_nvm

let spark_label = function
  | Sd -> "Spark-SD"
  | Sd_nvm -> "Spark-SD"
  | Mo -> "Spark-MO"
  | Ps11 -> "PS(JDK11)"
  | G1 -> "G1(JDK17)"
  | Panthera -> "Panthera"
  | Th -> "TeraHeap"
  | Th_nvm -> "TeraHeap"

let run_spark ?(threads = 8) ?dram ?dataset_scale ?h2_config ?policy system
    (p : Spark_profiles.t) =
  let costs = costs ~threads () in
  let dram = match dram with Some d -> d | None -> default_dram p in
  let heap_gb = heap_gb_of_dram dram in
  let setup =
    match system with
    | Sd -> Setups.spark_sd ~costs ~heap_gb ()
    | Sd_nvm ->
        Setups.spark_sd ~device_kind:Device.Nvm_app_direct ~costs ~heap_gb ()
    | Mo -> Setups.spark_mo ~costs ~heap_gb:(mo_heap_gb p) ~dram_gb:dram ()
    | Ps11 -> Setups.spark_sd ~collector:Rt.Ps_jdk11 ~costs ~heap_gb ()
    | G1 -> Setups.spark_sd ~collector:Rt.G1 ~costs ~heap_gb ()
    | Panthera -> Setups.spark_panthera ~costs ~heap_gb:64 ()
    | Th ->
        Setups.spark_teraheap ~costs ?h2_config ?policy
          ~huge_pages:p.Spark_profiles.sequential ~h1_gb:heap_gb
          ~dr2_gb:Spark_profiles.dr2_gb ()
    | Th_nvm ->
        Setups.spark_teraheap ~device_kind:Device.Nvm_app_direct ~costs
          ?h2_config ?policy ~huge_pages:p.Spark_profiles.sequential
          ~h1_gb:heap_gb ~dr2_gb:Spark_profiles.dr2_gb ()
  in
  let label = Printf.sprintf "%s @%dGB" (spark_label system) dram in
  Spark_driver.run ?dataset_scale ?h2_device:setup.Setups.h2_device ~label
    setup.Setups.ctx p

type giraph_system = Ooc | G_th

let run_giraph ?(threads = 8) ?(small_dram = false) ?scale ?h2_config ?policy
    ?seed ?h1_gb system (p : Giraph_profiles.t) =
  let seed = match seed with Some _ -> seed | None -> !giraph_seed in
  let costs = costs ~threads () in
  let delta =
    if small_dram then p.Giraph_profiles.dram_gb - p.Giraph_profiles.dram_small_gb
    else 0
  in
  match system with
  | Ooc ->
      let s =
        Setups.giraph_ooc ~costs
          ~heap_gb:(p.Giraph_profiles.ooc_heap_gb - delta)
          ()
      in
      let label =
        Printf.sprintf "Giraph-OOC @%dGB"
          (p.Giraph_profiles.dram_gb - delta)
      in
      Giraph_driver.run ~label s.Setups.rt ~mode:s.Setups.mode
        ?ooc_device:s.Setups.ooc_device ?scale ?seed p
  | G_th ->
      let h1_gb =
        match h1_gb with Some h -> h | None -> p.Giraph_profiles.th_h1_gb
      in
      let s =
        Setups.giraph_teraheap ~costs ?h2_config ?policy ~h1_gb
          ~dr2_gb:(max 4 (p.Giraph_profiles.th_dr2_gb - delta))
          ()
      in
      let label =
        Printf.sprintf "TeraHeap @%dGB" (p.Giraph_profiles.dram_gb - delta)
      in
      Giraph_driver.run ~label s.Setups.rt ~mode:s.Setups.mode
        ?h2_device:s.Setups.g_h2_device ?scale ?seed p

(* Cost hints for longest-expected-first scheduling: arbitrary units
   proportional to a cell's expected runtime — heap size times workload
   iterations, per the profile. A wrong hint only costs balance, never
   correctness, so these stay deliberately crude. *)
let spark_cost ?dram ?(dataset_scale = 1.0) (p : Spark_profiles.t) =
  let dram = match dram with Some d -> d | None -> default_dram p in
  dataset_scale
  *. float_of_int (max 1 dram * max 1 p.Spark_profiles.iterations)

let giraph_cost ?(scale = 1.0) ?(small_dram = false) (p : Giraph_profiles.t) =
  let dram =
    if small_dram then p.Giraph_profiles.dram_small_gb
    else p.Giraph_profiles.dram_gb
  in
  scale *. float_of_int (max 1 dram * max 1 p.Giraph_profiles.dataset_gb)

let rows_of_results results = List.map Run_result.to_report_row results

let total_seconds (r : Run_result.t) =
  match r.Run_result.breakdown with
  | Some b -> Clock.total_ns b /. 1e9
  | None -> nan
