(* Chaos-soak harness: the long-horizon streaming service under phased
   fault schedules (wear-out, bursty), with and without the resilience
   layer, at --verify safepoint throughout. The A/B against the
   no-breaker baseline makes the resilience layer's effect visible in
   one table: same workload, same fault sequence, different outcome and
   pause tail. Cells run on the harness pool; all printing is serial and
   in submission order, so stdout is byte-identical for every --jobs. *)

open Th_sim
module Setups = Th_baselines.Setups
module Streaming_driver = Th_workloads.Streaming_driver
module Run_result = Th_workloads.Run_result
module Report = Th_metrics.Report
module Cdf = Th_metrics.Cdf
module Gc_stats = Th_psgc.Gc_stats
module Verify = Th_verify.Verify
module Monitor = Th_resilience.Monitor
module Breaker = Th_resilience.Breaker
module Slo = Th_resilience.Slo
module Plan = Th_exec.Plan

(* Bench-scale soak: long enough for the wear-out schedule to reach its
   terminal phase and for breaker open/close cycles to play out, short
   enough for CI. *)
let profile =
  {
    Th_workloads.Streaming_driver.soak with
    Th_workloads.Streaming_driver.name = "bench-soak";
    batches = 400;
    batch_interval_ns = 1e9;
  }

let schedules =
  [ ("wearout", Fault.wearout); ("bursty", Fault.bursty) ]

let cell ~schedule ~fplan ~with_breaker () =
  let s =
    Setups.streaming_teraheap ~faults:fplan
      ~h1_gb:profile.Th_workloads.Streaming_driver.h1_gb
      ~dr2_gb:profile.Th_workloads.Streaming_driver.dr2_gb ()
  in
  let v = Verify.attach s.Setups.s_rt Verify.Safepoint in
  let monitor =
    if with_breaker then Some (Monitor.attach ~slo:Slo.default s.Setups.s_rt)
    else None
  in
  let label =
    Printf.sprintf "%s/%s" schedule
      (if with_breaker then "breaker" else "no-breaker")
  in
  let r =
    Streaming_driver.run ~label ?h2_device:s.Setups.s_h2_device
      ?faults:s.Setups.s_faults ?monitor s.Setups.s_rt profile
  in
  (r, v)

let outcome_name = function
  | Run_result.Completed -> "completed"
  | Run_result.Degraded -> "degraded"
  | Run_result.Oom -> "OOM"

let pause_samples (r : Run_result.t) =
  match r.Run_result.gc_stats with
  | None -> []
  | Some stats ->
      List.map
        (function
          | Gc_stats.Minor m -> m.duration_ns
          | Gc_stats.Major m -> m.duration_ns)
        (Gc_stats.cycles stats)

let ms ns = Printf.sprintf "%.3f" (ns /. 1e6)

let row ((r : Run_result.t), v) =
  let pauses = pause_samples r in
  let pct p = Cdf.percentile pauses p in
  let trips, routed, slo_str =
    match r.Run_result.resilience with
    | None -> ("-", "-", "-")
    | Some s ->
        ( string_of_int s.Monitor.breaker.Breaker.trips,
          string_of_int
            (s.Monitor.moves_suppressed + s.Monitor.fallback_serializations
           + s.Monitor.deferred_batches),
          match s.Monitor.slo with
          | Some rep -> if rep.Slo.compliant then "PASS" else "FAIL"
          | None -> "-" )
  in
  [
    r.Run_result.label;
    outcome_name r.Run_result.outcome;
    ms (pct 50.0);
    ms (pct 99.0);
    ms (pct 99.9);
    trips;
    routed;
    slo_str;
    string_of_int (Verify.violation_count v);
  ]

(* The soak cells dominate any batch they join: weight them by batch
   count so the scheduler starts them first. *)
let soak_cost =
  float_of_int profile.Th_workloads.Streaming_driver.batches /. 10.0

let plan () =
  let b = Plan.create () in
  let results =
    Plan.costed_list b ~label:"soak"
      (List.concat_map
         (fun (schedule, fplan) ->
           [
             (soak_cost, cell ~schedule ~fplan ~with_breaker:true);
             (soak_cost, cell ~schedule ~fplan ~with_breaker:false);
           ])
         schedules)
  in
  Plan.seal b ~render:(fun () ->
      let results = Plan.get results in
      Report.print_series
        ~title:
          (Printf.sprintf
             "Chaos soak: streaming service, %d batches, verify=safepoint \
              (pause tails in ms)"
             profile.Th_workloads.Streaming_driver.batches)
        ~header:
          [
            "cell"; "outcome"; "p50"; "p99"; "p999"; "trips"; "routed"; "slo";
            "violations";
          ]
        (List.map row results);
      List.iter
        (fun ((r : Run_result.t), _) ->
          match r.Run_result.resilience with
          | Some s when s.Monitor.breaker.Breaker.trips > 0 ->
              Format.printf "%s: %a@." r.Run_result.label Monitor.pp_summary s
          | Some _ | None -> ())
        results)
