(* Figure 12: the NVM server. (a) Spark-SD vs TeraHeap with H2/off-heap
   over NVM in App-Direct mode; (b) Spark-MO (heap on NVM in Memory mode)
   vs TeraHeap; (c) Panthera vs TeraHeap with the same DRAM and NVM
   budget (64 GB hybrid heap vs 16 GB H1 + NVM H2). *)

open Runners
module Report = Th_metrics.Report
module Setups = Th_baselines.Setups
module Device = Th_device.Device

let part_a b =
  let groups =
    Plan.grouped_costed b ~label:"fig12a"
      (List.map
         (fun (p : Spark_profiles.t) ->
           let c = spark_cost p in
           ( p,
             [
               (c, fun () -> run_spark Sd_nvm p);
               (c, fun () -> run_spark Th_nvm p);
             ] ))
         Spark_profiles.all)
  in
  fun () ->
    List.iter
      (fun ((p : Spark_profiles.t), results) ->
        Report.print_breakdown_table
          ~title:
            (Printf.sprintf "Fig 12a / %s on NVM: Spark-SD vs TeraHeap"
               p.Spark_profiles.name)
          (rows_of_results results))
      (Plan.get groups)

let part_b b =
  let groups =
    Plan.grouped_costed b ~label:"fig12b"
      (List.map
         (fun (p : Spark_profiles.t) ->
           let c = spark_cost p in
           ( p,
             [
               (c, fun () -> run_spark Mo p);
               (c, fun () -> run_spark Th_nvm p);
             ] ))
         Spark_profiles.all)
  in
  fun () ->
    List.iter
      (fun ((p : Spark_profiles.t), results) ->
        Report.print_breakdown_table
          ~title:
            (Printf.sprintf "Fig 12b / %s on NVM: Spark-MO vs TeraHeap"
               p.Spark_profiles.name)
          (rows_of_results results))
      (Plan.get groups)

(* Panthera's configuration fixes the heap at 64 GB (16 DRAM + 48 NVM);
   inputs are sized so the cached data fits the hybrid heap, and TeraHeap
   gets the same DRAM (16 GB H1) with H2 on NVM. *)
let part_c b =
  let workloads =
    [ "PR"; "CC"; "SSSP"; "SVD"; "LR"; "LgR"; "KM"; "SVM"; "BC" ]
  in
  let groups =
    Plan.grouped_costed b ~label:"fig12c"
      (List.map
         (fun name ->
           let p = Spark_profiles.by_name name in
           let dataset_scale =
             min 1.0 (32.0 /. float_of_int p.Spark_profiles.dataset_gb)
           in
           let c = spark_cost ~dataset_scale p in
           ( name,
             [
               (c, fun () -> run_spark ~dataset_scale Panthera p);
               ( c,
                 fun () ->
                   let costs = costs () in
                   let setup =
                     Setups.spark_teraheap ~device_kind:Device.Nvm_app_direct
                       ~costs ~huge_pages:p.Spark_profiles.sequential ~h1_gb:16
                       ~dr2_gb:16 ()
                   in
                   Spark_driver.run ~dataset_scale
                     ~label:"TeraHeap (16GB H1 + NVM H2)" setup.Setups.ctx p );
             ] ))
         workloads)
  in
  fun () ->
    List.iter
      (fun (name, results) ->
        Report.print_breakdown_table
          ~title:(Printf.sprintf "Fig 12c / %s: Panthera vs TeraHeap" name)
          (rows_of_results results))
      (Plan.get groups)

let plan () =
  let b = Plan.create () in
  let render_a = part_a b in
  let render_b = part_b b in
  let render_c = part_c b in
  Plan.seal b ~render:(fun () ->
      render_a ();
      render_b ();
      render_c ())
