(* Figure 10: CDFs of the percentage of live objects (top) and of space
   occupied by live objects (bottom) per H2 region, for 16 MB and 256 MB
   regions (scaled: 256 KiB and 4 MiB), across the five Giraph
   workloads. Reclaimed regions contribute 0 % samples. *)

open Runners
module H2 = Th_core.H2
module Report = Th_metrics.Report
module Cdf = Th_metrics.Cdf
module Obj_ = Th_objmodel.Heap_object
module Roots = Th_objmodel.Roots
open Th_sim

(* One Giraph run returning Figure-10 samples under a full-reachability
   oracle (the paper instruments liveness the same way). *)
let samples_for (p : Giraph_profiles.t) ~region_size =
  let costs = costs () in
  let config = { H2.default_config with H2.region_size } in
  let s =
    Setups.giraph_teraheap ~costs ~h2_config:config
      ~h1_gb:p.Giraph_profiles.th_h1_gb ~dr2_gb:p.Giraph_profiles.th_dr2_gb ()
  in
  let result =
    Giraph_driver.run
      ~label:(p.Giraph_profiles.name ^ " region-stats")
      s.Setups.rt ~mode:s.Setups.mode p
  in
  ignore result;
  match Runtime.h2 s.Setups.rt with
  | None -> []
  | Some h2 ->
      let roots = Roots.to_list (Runtime.roots s.Setups.rt) in
      let reachable = Obj_.reachable ~roots ~fence_h2:false in
      H2.harvest_region_samples h2 ~is_live:(fun o ->
          Hashtbl.mem reachable o.Obj_.id)

let print_cdf title samples =
  let pts = Cdf.points ~buckets:10 samples in
  let header = "regions %" :: List.map (fun (x, _) -> Printf.sprintf "%.0f" x) pts in
  let row = title :: List.map (fun (_, v) -> Printf.sprintf "%.0f%%" v) pts in
  Report.print_series ~title:("Fig 10: " ^ title) ~header [ row ]

let plan () =
  let b = Plan.create () in
  let groups =
    Plan.grouped_costed b ~label:"fig10"
      (List.map
         (fun mb_scaled ->
           ( mb_scaled,
             List.map
               (fun (p : Giraph_profiles.t) ->
                 ( giraph_cost p,
                   fun () -> (p, samples_for p ~region_size:(Size.kib mb_scaled))
                 ))
               Giraph_profiles.all ))
         [ 256; 4096 ])
  in
  Plan.seal b ~render:(fun () ->
      List.iter
        (fun (mb_scaled, per_profile) ->
          let region_size = Size.kib mb_scaled in
          Printf.printf "\n-- region size %s (paper: %d MB) --\n"
            (Size.to_string region_size)
            (mb_scaled * 64 / 1024);
          List.iter
            (fun ((p : Giraph_profiles.t), samples) ->
              let live_obj = List.map (fun s -> s.H2.live_object_pct) samples in
              let live_space =
                List.map (fun s -> s.H2.live_space_pct) samples
              in
              print_cdf
                (Printf.sprintf "%s live objects/region"
                   p.Giraph_profiles.name)
                live_obj;
              print_cdf
                (Printf.sprintf "%s live space/region" p.Giraph_profiles.name)
                live_space)
            per_profile)
        (Plan.get groups))
