(* Figure 7: GC-cycle timeline and old-generation occupancy for Spark-PR
   with a 64 GB heap (DRAM 80), Spark-SD vs TeraHeap. The paper reports
   171 major GCs averaging 3.7 s for Spark-SD against 13 averaging 16 s
   for TeraHeap (§7.1). *)

open Runners
module Report = Th_metrics.Report
module Gc_stats = Th_psgc.Gc_stats

let summarize label (r : Run_result.t) =
  match r.Run_result.gc_stats with
  | None -> ()
  | Some stats ->
      let majors = Gc_stats.major_count stats in
      let minors = Gc_stats.minor_count stats in
      let avg_major_s = Gc_stats.avg_major_ns stats /. 1e9 in
      let minor_total_s = Gc_stats.minor_total_ns stats /. 1e9 in
      Printf.printf
        "%-22s major GCs: %4d (avg %6.4f s)   minor GCs: %5d (total %6.4f \
         s)\n"
        label majors avg_major_s minors minor_total_s;
      (* Occupancy timeline, downsampled to 12 points. *)
      let tl = Gc_stats.occupancy_timeline stats in
      let n = List.length tl in
      if n > 0 then begin
        let arr = Array.of_list tl in
        let points = min 12 n in
        Printf.printf "%-22s occupancy:" "";
        for i = 0 to points - 1 do
          let at, occ = arr.(i * (n - 1) / max 1 (points - 1)) in
          Printf.printf " %4.0fs:%3.0f%%" (at /. 1e9) (100.0 *. occ)
        done;
        print_newline ()
      end

let plan () =
  let b = Plan.create () in
  let p = Spark_profiles.pagerank in
  let sd =
    Plan.cell b ~label:"fig7/sd" ~cost:(spark_cost ~dram:80 p) (fun () ->
        run_spark ~dram:80 Sd p)
  in
  let th =
    Plan.cell b ~label:"fig7/th" ~cost:(spark_cost ~dram:80 p) (fun () ->
        run_spark ~dram:80 Th p)
  in
  Plan.seal b ~render:(fun () ->
      Printf.printf "\n== Fig 7: GC timeline, Spark-PR, 64GB heap ==\n";
      summarize "Spark-SD" (Plan.get sd);
      summarize "TeraHeap" (Plan.get th))
