(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6–§7). Run all experiments with `dune exec bench/main.exe`,
   or select sections: `dune exec bench/main.exe -- fig6 fig7 ...`.
   `micro` runs the bechamel micro-benchmarks of the core structures.

   Experiment cells run on a domain pool; `--jobs N` (or `-j N`) selects
   the pool width, defaulting to the machine's recommended domain count.
   All rendering stays serial and in submission order, so stdout is
   byte-identical for every jobs value. Timing goes to stderr, and a
   machine-readable summary is written to BENCH_harness.json (override
   the path with the TH_BENCH_JSON environment variable). *)

(* Harness self-timing only: Sys.time here measures the harness's own
   CPU cost for BENCH_harness.json and stderr. It never feeds a
   simulated result, which all come from Th_sim.Clock. *)
[@@@th.allow "wall-clock"]

module Pool = Th_exec.Pool
module Wall = Th_exec.Wall
module Bench_log = Th_metrics.Bench_log

let sections : (string * string * (unit -> unit)) list =
  [
    ("table5", "H2 metadata size per TB vs region size", Table5.run);
    ("fig6", "TeraHeap vs Spark-SD / Giraph-OOC, DRAM sweep", Fig6.run);
    ("fig7", "GC timeline and old-gen occupancy, Spark-PR", Fig7.run);
    ("fig8", "PS-JDK11 and G1-JDK17 collectors vs TeraHeap", Fig8.run);
    ("fig9", "transfer hint and low-threshold policies", Fig9.run);
    ("fig10", "CDF of live objects/space per H2 region", Fig10.run);
    ("fig11", "H2 card segment sizes; major GC phases", Fig11.run);
    ("fig12", "NVM server: Spark-SD, Spark-MO, Panthera", Fig12.run);
    ("fig13", "scaling with threads and dataset size", Fig13.run);
    ("extras", "write-barrier overhead; union-find ablation", Extras.run);
    ("soak", "chaos soak: streaming under phased faults, breaker A/B", Soak.run);
    ("micro", "bechamel micro-benchmarks", Micro.run);
  ]

let usage () =
  Printf.eprintf
    "usage: main.exe [--jobs N] [--seed N] [SECTION ...]\navailable sections: \
     %s\n"
    (String.concat ", " (List.map (fun (n, _, _) -> n) sections))

(* Minimal flag parsing: `--jobs N`, `-j N`, `--jobs=N`, `--seed N`,
   `--seed=N`, `--trace FILE`, `--trace-format chrome|text`; every other
   argument is a section name. *)
let parse_args argv =
  let jobs = ref (Pool.default_jobs ()) in
  let seed = ref None in
  let trace = ref None in
  let trace_format = ref `Chrome in
  let names = ref [] in
  let int_of ~flag s =
    match int_of_string_opt s with
    | Some n -> n
    | None ->
        Printf.eprintf "%s expects an integer, got %S\n" flag s;
        usage ();
        exit 2
  in
  let rec go = function
    | [] -> ()
    | ("--jobs" | "-j") :: v :: rest ->
        jobs := int_of ~flag:"--jobs" v;
        go rest
    | ("--jobs" | "-j") :: [] ->
        Printf.eprintf "--jobs expects a value\n";
        usage ();
        exit 2
    | "--seed" :: v :: rest ->
        seed := Some (int_of ~flag:"--seed" v);
        go rest
    | "--seed" :: [] ->
        Printf.eprintf "--seed expects a value\n";
        usage ();
        exit 2
    | "--trace" :: v :: rest ->
        trace := Some v;
        go rest
    | "--trace" :: [] ->
        Printf.eprintf "--trace expects a file path\n";
        usage ();
        exit 2
    | "--trace-format" :: v :: rest ->
        (match v with
        | "chrome" -> trace_format := `Chrome
        | "text" -> trace_format := `Text
        | other ->
            Printf.eprintf "--trace-format expects chrome or text, got %S\n"
              other;
            usage ();
            exit 2);
        go rest
    | "--trace-format" :: [] ->
        Printf.eprintf "--trace-format expects a value\n";
        usage ();
        exit 2
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | arg :: rest ->
        (match
           ( String.length arg > 7 && String.sub arg 0 7 = "--jobs=",
             String.length arg > 7 && String.sub arg 0 7 = "--seed=" )
         with
        | true, _ ->
            jobs :=
              int_of ~flag:"--jobs"
                (String.sub arg 7 (String.length arg - 7))
        | _, true ->
            seed :=
              Some
                (int_of ~flag:"--seed"
                   (String.sub arg 7 (String.length arg - 7)))
        | false, false -> names := arg :: !names);
        go rest
  in
  go (List.tl (Array.to_list argv));
  (max 1 !jobs, !seed, !trace, !trace_format, List.rev !names)

let () =
  let jobs, seed, trace, trace_format, requested = parse_args Sys.argv in
  let requested =
    match requested with
    | [] -> List.map (fun (name, _, _) -> name) sections
    | names -> names
  in
  (match seed with
  | Some s -> Runners.giraph_seed := Some (Int64.of_int s)
  | None -> ());
  let pool = Pool.create ~jobs () in
  Runners.set_pool pool;
  let timed = ref [] in
  let wall0 = Wall.now_s () in
  let cpu0 = Sys.time () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      List.iter
        (fun name ->
          match List.find_opt (fun (n, _, _) -> n = name) sections with
          | Some (n, descr, f) ->
              Printf.printf "\n##### %s — %s #####\n%!" n descr;
              let w0 = Wall.now_s () in
              let c0 = Sys.time () in
              f ();
              timed :=
                {
                  Bench_log.name = n;
                  wall_s = Wall.elapsed_s ~since:w0;
                  cpu_s = Sys.time () -. c0;
                }
                :: !timed
          | None ->
              Printf.eprintf "unknown section %s; available: %s\n" name
                (String.concat ", " (List.map (fun (n, _, _) -> n) sections)))
        requested);
  let log =
    {
      Bench_log.jobs;
      sections = List.rev !timed;
      total_wall_s = Wall.elapsed_s ~since:wall0;
      total_cpu_s = Sys.time () -. cpu0;
    }
  in
  let json_path =
    match Sys.getenv_opt "TH_BENCH_JSON" with
    | Some p -> p
    | None -> Bench_log.default_path
  in
  Bench_log.write ~path:json_path log;
  (match trace with
  | Some path -> Trace_capture.run ~path ~format:trace_format
  | None -> ());
  (* Timing is jobs-dependent, so it goes to stderr: stdout stays
     byte-identical across --jobs values. *)
  Printf.eprintf
    "\n\
     (benchmarks completed in %.1f s wall / %.1f s cpu, jobs=%d, est. \
     speedup %.2fx; %s)\n"
    log.Bench_log.total_wall_s log.Bench_log.total_cpu_s jobs
    (Bench_log.speedup_vs_serial_est log)
    json_path
