(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6–§7). Run all experiments with `dune exec bench/main.exe`,
   or select sections: `dune exec bench/main.exe -- fig6 fig7 ...`.
   `micro` runs the bechamel micro-benchmarks of the core structures.

   Every section declares a plan: independent experiment cells plus a
   pure render that consumes results in submission order. The harness
   concatenates the cells of all requested sections into ONE global
   batch for the work-stealing scheduler (`--jobs N` / `-j N` selects
   the domain count, defaulting to the machine's recommended count),
   then runs the renders serially in request order — so stdout is
   byte-identical for every jobs value. Timing goes to stderr, and a
   machine-readable summary is merge-updated into BENCH_harness.json
   (override the path with the TH_BENCH_JSON environment variable). *)

(* Harness self-timing only: Sys.time here measures the harness's own
   CPU cost for BENCH_harness.json and stderr. It never feeds a
   simulated result, which all come from Th_sim.Clock. *)
[@@@th.allow "wall-clock"]

module Scheduler = Th_exec.Scheduler
module Plan = Th_exec.Plan
module Wall = Th_exec.Wall
module Bench_log = Th_metrics.Bench_log

let sections : (string * string * (unit -> Plan.section)) list =
  [
    ("table5", "H2 metadata size per TB vs region size", Table5.plan);
    ("fig6", "TeraHeap vs Spark-SD / Giraph-OOC, DRAM sweep", Fig6.plan);
    ("fig7", "GC timeline and old-gen occupancy, Spark-PR", Fig7.plan);
    ("fig8", "PS-JDK11 and G1-JDK17 collectors vs TeraHeap", Fig8.plan);
    ("fig9", "transfer hint and low-threshold policies", Fig9.plan);
    ("fig10", "CDF of live objects/space per H2 region", Fig10.plan);
    ("fig11", "H2 card segment sizes; major GC phases", Fig11.plan);
    ("fig12", "NVM server: Spark-SD, Spark-MO, Panthera", Fig12.plan);
    ("fig13", "scaling with threads and dataset size", Fig13.plan);
    ("extras", "write-barrier overhead; union-find ablation", Extras.plan);
    ( "tournament",
      "H2 placement-policy tournament with oracle upper bound",
      Tournament.plan );
    ("soak", "chaos soak: streaming under phased faults, breaker A/B", Soak.plan);
    ("micro", "bechamel micro-benchmarks", Micro.plan);
  ]

let usage () =
  Printf.eprintf
    "usage: main.exe [--jobs N] [--seed N] [SECTION ...]\navailable sections: \
     %s\n"
    (String.concat ", " (List.map (fun (n, _, _) -> n) sections))

(* Minimal flag parsing: `--jobs N`, `-j N`, `--jobs=N`, `--seed N`,
   `--seed=N`, `--trace FILE`, `--trace-format chrome|text`; every other
   argument is a section name. *)
let parse_args argv =
  let jobs = ref (Scheduler.default_jobs ()) in
  let seed = ref None in
  let trace = ref None in
  let trace_format = ref `Chrome in
  let names = ref [] in
  let int_of ~flag s =
    match int_of_string_opt s with
    | Some n -> n
    | None ->
        Printf.eprintf "%s expects an integer, got %S\n" flag s;
        usage ();
        exit 2
  in
  let rec go = function
    | [] -> ()
    | ("--jobs" | "-j") :: v :: rest ->
        jobs := int_of ~flag:"--jobs" v;
        go rest
    | ("--jobs" | "-j") :: [] ->
        Printf.eprintf "--jobs expects a value\n";
        usage ();
        exit 2
    | "--seed" :: v :: rest ->
        seed := Some (int_of ~flag:"--seed" v);
        go rest
    | "--seed" :: [] ->
        Printf.eprintf "--seed expects a value\n";
        usage ();
        exit 2
    | "--trace" :: v :: rest ->
        trace := Some v;
        go rest
    | "--trace" :: [] ->
        Printf.eprintf "--trace expects a file path\n";
        usage ();
        exit 2
    | "--trace-format" :: v :: rest ->
        (match v with
        | "chrome" -> trace_format := `Chrome
        | "text" -> trace_format := `Text
        | other ->
            Printf.eprintf "--trace-format expects chrome or text, got %S\n"
              other;
            usage ();
            exit 2);
        go rest
    | "--trace-format" :: [] ->
        Printf.eprintf "--trace-format expects a value\n";
        usage ();
        exit 2
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | arg :: rest ->
        (match
           ( String.length arg > 7 && String.sub arg 0 7 = "--jobs=",
             String.length arg > 7 && String.sub arg 0 7 = "--seed=" )
         with
        | true, _ ->
            jobs :=
              int_of ~flag:"--jobs"
                (String.sub arg 7 (String.length arg - 7))
        | _, true ->
            seed :=
              Some
                (int_of ~flag:"--seed"
                   (String.sub arg 7 (String.length arg - 7)))
        | false, false -> names := arg :: !names);
        go rest
  in
  go (List.tl (Array.to_list argv));
  (max 1 !jobs, !seed, !trace, !trace_format, List.rev !names)

let sum_slice (arr : float array) ~offset ~count =
  let s = ref 0.0 in
  for i = offset to offset + count - 1 do
    s := !s +. arr.(i)
  done;
  !s

let () =
  let jobs, seed, trace, trace_format, requested = parse_args Sys.argv in
  let requested =
    match requested with
    | [] -> List.map (fun (name, _, _) -> name) sections
    | names -> names
  in
  let selected =
    List.filter_map
      (fun name ->
        match List.find_opt (fun (n, _, _) -> n = name) sections with
        | Some s -> Some s
        | None ->
            Printf.eprintf "unknown section %s; available: %s\n" name
              (String.concat ", " (List.map (fun (n, _, _) -> n) sections));
            None)
      requested
  in
  (match seed with
  | Some s -> Runners.giraph_seed := Some (Int64.of_int s)
  | None -> ());
  let sched = Scheduler.create ~jobs () in
  Runners.set_pool sched;
  let wall0 = Wall.now_s () in
  let cpu0 = Sys.time () in
  let log =
    Fun.protect
      ~finally:(fun () -> Scheduler.shutdown sched)
      (fun () ->
        (* Build every requested plan first, then submit the cells of
           all sections as one global batch: the scheduler sees the
           whole cell population at once instead of 2–4 cells per
           pmap call. *)
        let plans = List.map (fun (n, d, mk) -> (n, d, mk ())) selected in
        let batch = List.concat_map (fun (_, _, s) -> Plan.cells s) plans in
        ignore (Scheduler.run_cells sched batch);
        let stats = Scheduler.last_batch sched in
        (* Renders run serially in request order; each reads only its
           own section's futures. *)
        let offset = ref 0 in
        let timed =
          List.map
            (fun (n, d, s) ->
              let count = List.length (Plan.cells s) in
              let cell_wall_s =
                sum_slice stats.Scheduler.cell_wall_s ~offset:!offset ~count
              in
              offset := !offset + count;
              Printf.printf "\n##### %s — %s #####\n%!" n d;
              let r0 = Wall.now_s () in
              Plan.render s;
              {
                Bench_log.name = n;
                jobs;
                cells = count;
                cell_wall_s;
                render_wall_s = Wall.elapsed_s ~since:r0;
              })
            plans
        in
        ( {
            Bench_log.jobs;
            sections = timed;
            total_wall_s = Wall.elapsed_s ~since:wall0;
            total_cpu_s = Sys.time () -. cpu0;
          },
          stats ))
  in
  let log, stats = log in
  let json_path =
    match Sys.getenv_opt "TH_BENCH_JSON" with
    | Some p -> p
    | None -> Bench_log.default_path
  in
  Bench_log.write ~path:json_path log;
  (match trace with
  | Some path -> Trace_capture.run ~path ~format:trace_format
  | None -> ());
  (* Timing is jobs- and scheduling-dependent, so it goes to stderr:
     stdout stays byte-identical across --jobs values. *)
  Printf.eprintf
    "\n\
     (benchmarks completed in %.1f s wall / %.1f s cpu, jobs=%d, measured \
     speedup %.2fx vs serial (est %.2fx); %d cells in %d chunks, %d steals; \
     %s)\n"
    log.Bench_log.total_wall_s log.Bench_log.total_cpu_s jobs
    (Bench_log.speedup_vs_serial_measured log)
    (Bench_log.speedup_vs_serial_est log)
    stats.Scheduler.cells stats.Scheduler.chunks stats.Scheduler.steals
    json_path
