(* One instrumented workload for `--trace`: a Spark-PR TeraHeap run with
   a flight recorder attached, exported to the requested file. Kept out
   of the figure sections so their stdout and CSV output stay
   byte-identical whether or not a trace is requested; the status note
   goes to stderr for the same reason. *)

module Setups = Th_baselines.Setups
module Spark_profiles = Th_workloads.Spark_profiles
module Spark_driver = Th_workloads.Spark_driver

let run ~path ~format =
  let p = Spark_profiles.by_name "PR" in
  let costs = Th_sim.Costs.with_mutator_threads Setups.default_costs 8 in
  let dram = List.fold_left max 0 p.Spark_profiles.sd_dram_gb in
  let setup =
    Setups.spark_teraheap ~costs ~huge_pages:p.Spark_profiles.sequential
      ~h1_gb:(dram - Spark_profiles.dr2_gb)
      ~dr2_gb:Spark_profiles.dr2_gb ()
  in
  let tr = Th_trace.Recorder.create ~lane:0 () in
  Th_sim.Clock.set_tracer setup.Setups.clock (Some tr);
  let result =
    Spark_driver.run ~label:"PR TeraHeap (trace capture)"
      ?h2_device:setup.Setups.h2_device ?faults:setup.Setups.faults
      setup.Setups.ctx p
  in
  let events = Th_trace.Export.merge [ tr ] in
  let data =
    match format with
    | `Chrome -> Th_trace.Export.to_chrome_json events
    | `Text -> Th_trace.Export.to_text events
  in
  let oc = open_out path in
  output_string oc data;
  close_out oc;
  Printf.eprintf "(trace: %s — %d events from %s, %d dropped)\n%!" path
    (List.length events) result.Th_workloads.Run_result.label
    (Th_trace.Recorder.dropped tr)
