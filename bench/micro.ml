(* Bechamel micro-benchmarks of the core data structures: H2 card-table
   operations, region allocation/reclamation, dependency propagation,
   closure traversal, serializer throughput. One Test.make per table. *)

open Bechamel
open Toolkit
module H2 = Th_core.H2
module H2_card_table = Th_core.H2_card_table
module Obj_ = Th_objmodel.Heap_object
module Card_table = Th_minijvm.Card_table
open Th_sim

let make_h2 () =
  let clock = Clock.create () in
  let costs = Costs.default in
  let device = Th_device.Device.create clock Th_device.Device.Nvme_ssd in
  H2.create ~config:H2.default_config ~clock ~costs ~device
    ~dr2_bytes:(Size.mib 8) ()

let test_card_mark =
  let ct = H2_card_table.create ~capacity_bytes:(Size.mib 256) () in
  Test.make ~name:"h2 card mark_dirty"
    (Staged.stage (fun () -> H2_card_table.mark_dirty ct ~gaddr:123_456))

let test_card_scan =
  let ct = H2_card_table.create ~capacity_bytes:(Size.mib 64) () in
  for i = 0 to 100 do
    H2_card_table.mark_dirty ct ~gaddr:(i * Size.kib 640)
  done;
  Test.make ~name:"h2 card table scan (16k segments)"
    (Staged.stage (fun () ->
         let n = ref 0 in
         H2_card_table.iter_minor_scan ct ~lo:0
           ~hi:(H2_card_table.num_segments ct) (fun _ _ -> incr n)))

let test_region_cycle =
  Test.make ~name:"h2 region alloc+reclaim (64 objs)"
    (Staged.stage (fun () ->
         let h2 = make_h2 () in
         (try
            for i = 0 to 63 do
              let o = Obj_.create ~id:i ~size:1024 () in
              H2.alloc h2 o ~label:1
            done
          with H2.Out_of_h2_space ->
            (* 64 KiB cannot exhaust a fresh H2; an overflow here means
               the fixture shrank. Fail the benchmark, not the harness. *)
            failwith "micro: H2 exhausted in region-cycle fixture");
         H2.clear_live_bits h2;
         ignore (H2.free_dead_regions h2 ~on_free:(fun _ -> ()))))

let test_closure =
  let root = Obj_.create ~id:0 ~size:64 () in
  for i = 1 to 1000 do
    Obj_.add_ref root (Obj_.create ~id:i ~size:256 ())
  done;
  Test.make ~name:"reachability over 1k-object group"
    (Staged.stage (fun () ->
         ignore (Obj_.reachable ~roots:[ root ] ~fence_h2:false)))

let test_h1_cards =
  let ct = Card_table.create ~capacity_bytes:(Size.mib 64) () in
  Test.make ~name:"h1 card mark+clear"
    (Staged.stage (fun () ->
         Card_table.mark_dirty ct ~addr:51200;
         Card_table.clear_card ct ~card:(Card_table.card_of_addr ct 51200)))

module H1_heap = Th_minijvm.H1_heap

(* An old generation with [objs] registered objects and [dirty] dirty
   cards spread evenly over the populated address range, exercising the
   minor-GC Task-2 scan both ways: the pre-refactor linear sweep of
   [old_objs] and the card-indexed bucket walk. The bucket walk should
   scale with the number of dirty cards, not the old-generation
   population. *)
let make_old_heap ~objs ~dirty =
  let heap = H1_heap.create ~heap_bytes:(Size.mib 64) () in
  let size = 200 in
  for i = 0 to objs - 1 do
    match H1_heap.old_alloc_addr heap size with
    | None -> failwith "micro: old generation sized too small"
    | Some addr ->
        let o = Obj_.create ~id:i ~size () in
        o.Obj_.loc <- Obj_.Old;
        o.Obj_.addr <- addr;
        H1_heap.push_old heap o
  done;
  let span = heap.H1_heap.old_top in
  for i = 0 to dirty - 1 do
    Card_table.mark_dirty heap.H1_heap.cards ~addr:(i * span / dirty)
  done;
  heap

let linear_scan (heap : H1_heap.t) () =
  let ct = heap.H1_heap.cards in
  let n = ref 0 in
  Vec.iter
    (fun (o : Obj_.t) ->
      if Card_table.is_dirty ct ~card:(Card_table.card_of_addr ct o.Obj_.addr)
      then incr n)
    heap.H1_heap.old_objs;
  !n

let bucket_scan (heap : H1_heap.t) () =
  let n = ref 0 in
  Card_table.iter_dirty_buckets heap.H1_heap.cards (fun _card bucket ->
      n := !n + Vec.length bucket);
  !n

let test_rset name scan ~objs ~dirty =
  let heap = make_old_heap ~objs ~dirty in
  Test.make ~name (Staged.stage (fun () -> ignore (scan heap ())))

let rset_benchmarks =
  [
    test_rset "rset linear scan 64k objs/16 dirty" linear_scan ~objs:65536
      ~dirty:16;
    test_rset "rset bucket scan 64k objs/16 dirty" bucket_scan ~objs:65536
      ~dirty:16;
    test_rset "rset bucket scan 8k objs/16 dirty" bucket_scan ~objs:8192
      ~dirty:16;
    test_rset "rset bucket scan 64k objs/256 dirty" bucket_scan ~objs:65536
      ~dirty:256;
  ]

let benchmarks =
  [ test_card_mark; test_card_scan; test_region_cycle; test_closure; test_h1_cards ]
  @ rset_benchmarks

(* One cell per bechamel test: each cell runs its benchmark and returns
   name-sorted [(name, estimate option)] rows; the render only prints. *)
let measure test =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let results =
    Benchmark.all cfg instances test
    |> fun raw ->
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  (* th-lint: allow hashtbl-order — collected into a list and sorted by
     name below before printing. *)
  Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (name, result) ->
         match Analyze.OLS.estimates result with
         | Some [ est ] -> (name, Some est)
         | _ -> (name, None))

let plan () =
  let b = Th_exec.Plan.create () in
  let rows =
    Th_exec.Plan.cell_list b ~label:"micro"
      (List.map (fun test () -> measure test) benchmarks)
  in
  Th_exec.Plan.seal b ~render:(fun () ->
      List.iter
        (List.iter (fun (name, est) ->
             match est with
             | Some est -> Printf.printf "%-40s %12.1f ns/op\n" name est
             | None -> Printf.printf "%-40s (no estimate)\n" name))
        (Th_exec.Plan.get rows))
