(* Table 5: DRAM metadata per TB of H2 as a function of the region size.
   The paper measures 417 MB/TB at 1 MB regions, halving as region size
   doubles, down to 2 MB/TB at 256 MB regions. *)

open Runners
module H2 = Th_core.H2
module Report = Th_metrics.Report
open Th_sim

let region_sizes_mb = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]

let plan () =
  let b = Plan.create () in
  let row =
    Plan.cell b ~label:"table5" ~cost:0.1 (fun () ->
        "Metadata Size (MB)"
        :: List.map
             (fun mb ->
               let bytes =
                 H2.metadata_bytes_per_tb ~region_size:(Size.mib mb)
               in
               Printf.sprintf "%.0f"
                 (Float.round (float_of_int bytes /. 1048576.0)))
             region_sizes_mb)
  in
  Plan.seal b ~render:(fun () ->
      let header =
        "Region Size (MB)" :: List.map string_of_int region_sizes_mb
      in
      Report.print_series ~title:"Table 5: H2 metadata per TB" ~header
        [ Plan.get row ])
