(* Textual results from the paper outside the numbered figures:
   - §4: post-write-barrier overhead with EnableTeraHeap is within 3 %
     (DaCapo); reproduced with a mutation-heavy synthetic workload;
   - §3.3: dependency lists reclaim more regions than the Union-Find
     region-group alternative because reference direction matters. *)

open Runners
module H2 = Th_core.H2
module Report = Th_metrics.Report
module Runtime = Th_psgc.Runtime
module H1_heap = Th_minijvm.H1_heap
open Th_sim

let barrier_overhead b =
  (* §4: the DaCapo-style micro-suite; the paper reports a mean overhead
     within 3 % across all benchmarks and zero when EnableTeraHeap is
     unset. *)
  let measured =
    Plan.cell_list b ~label:"extras/barrier"
      (List.map
         (fun (bench : Th_workloads.Dacapo.benchmark) () ->
           (bench.Th_workloads.Dacapo.name, Th_workloads.Dacapo.overhead bench))
         Th_workloads.Dacapo.all)
  in
  fun () ->
    let measured = Plan.get measured in
    let rows =
      List.map
        (fun (name, (ov, barriers)) ->
          [ name; string_of_int barriers; Report.pct ov ])
        measured
    in
    let mean =
      List.fold_left (fun acc (_, (ov, _)) -> acc +. ov) 0.0 measured
      /. float_of_int (List.length measured)
    in
    Report.print_series
      ~title:
        "§4: post-write barrier overhead (EnableTeraHeap), DaCapo-style suite"
      ~header:[ "benchmark"; "barriers"; "overhead" ]
      (rows @ [ [ "mean"; "-"; Report.pct mean ] ])

let ablation_union_find b =
  let cell p mode () =
    let cfg = { H2.default_config with H2.reclaim_mode = mode } in
    let r = run_giraph ~h2_config:cfg G_th p in
    match r.Run_result.h2_stats with
    | Some s ->
        ( Printf.sprintf "%d/%d" s.H2.regions_reclaimed s.H2.regions_allocated,
          total_seconds r )
    | None -> ("OOM", nan)
  in
  let groups =
    Plan.grouped_costed b ~label:"extras/union-find"
      (List.map
         (fun (p : Giraph_profiles.t) ->
           let c = giraph_cost p in
           ( p,
             [ (c, cell p H2.Dependency_lists); (c, cell p H2.Region_groups) ]
           ))
         Giraph_profiles.all)
  in
  fun () ->
    let rows =
      List.map
        (fun ((p : Giraph_profiles.t), results) ->
          let (dep, dep_t), (uf, uf_t) =
            pair2 ~what:"extras:h2-policy" results
          in
          [
            p.Giraph_profiles.name;
            dep;
            Printf.sprintf "%.3fs" dep_t;
            uf;
            Printf.sprintf "%.3fs" uf_t;
          ])
        (Plan.get groups)
    in
    Report.print_series
      ~title:
        "§3.3 ablation: dependency lists vs Union-Find region groups \
         (reclaimed/allocated regions)"
      ~header:[ "workload"; "dep-lists"; "time"; "union-find"; "time" ]
      rows

(* §7.1: "TeraHeap can also be used with G1 ... by moving long-lived,
   humongous objects to H2". G1 alone OOMs on the columnar workloads;
   G1 + TeraHeap runs them because the humongous cached data leaves H1. *)
let g1_with_teraheap b =
  let groups =
    Plan.grouped_costed b ~label:"extras/g1"
      (List.map
         (fun name ->
           let p = Spark_profiles.by_name name in
           let dram = default_dram p in
           let c = spark_cost ~dram p in
           ( name,
             [
               (c, fun () -> run_spark ~dram G1 p);
               ( c,
                 fun () ->
                   let setup =
                     Setups.spark_teraheap ~collector:Th_psgc.Rt.G1
                       ~huge_pages:p.Spark_profiles.sequential
                       ~h1_gb:(heap_gb_of_dram dram)
                       ~dr2_gb:Spark_profiles.dr2_gb ()
                   in
                   Spark_driver.run ~label:"g1+th" setup.Setups.ctx p );
             ] ))
         [ "SVM"; "BC"; "RL"; "PR" ])
  in
  fun () ->
    let rows =
      List.map
        (fun (name, results) ->
          let g1, g1_th = pair2 ~what:"extras:g1" results in
          let cell (r : Run_result.t) =
            match r.Run_result.breakdown with
            | None -> "OOM"
            | Some b -> Printf.sprintf "%.3fs" (Th_sim.Clock.total_ns b /. 1e9)
          in
          [ name; cell g1; cell g1_th ])
        (Plan.get groups)
    in
    Report.print_series ~title:"§7.1 extension: G1 alone vs G1 + TeraHeap"
      ~header:[ "workload"; "G1"; "G1+TeraHeap" ]
      rows

(* §7.2 future work: dynamic thresholds vs the static low threshold, on
   the Figure-9b large-dataset runs. *)
let dynamic_thresholds b =
  let static_cfg = { H2.default_config with H2.low_threshold = Some 0.5 } in
  let dynamic_cfg =
    {
      H2.default_config with
      H2.low_threshold = Some 0.5;
      dynamic_thresholds = true;
    }
  in
  let groups =
    Plan.grouped_costed b ~label:"extras/dyn-threshold"
      (List.map
         (fun (p : Giraph_profiles.t) ->
           let scale = 91.0 /. float_of_int p.Giraph_profiles.dataset_gb in
           let c = giraph_cost ~scale p in
           let t cfg () =
             total_seconds (run_giraph ~scale ~h2_config:cfg G_th p)
           in
           (p, [ (c, t static_cfg); (c, t dynamic_cfg) ]))
         [ Giraph_profiles.pagerank; Giraph_profiles.sssp ])
  in
  fun () ->
    let rows =
      List.map
        (fun ((p : Giraph_profiles.t), results) ->
          let st, dy = pair2 ~what:"extras:static-dynamic" results in
          [
            p.Giraph_profiles.name;
            Printf.sprintf "%.3fs" st;
            Printf.sprintf "%.3fs" dy;
            Report.pct ((st -. dy) /. st);
          ])
        (Plan.get groups)
    in
    Report.print_series
      ~title:"§7.2 extension: static vs dynamic low threshold (91GB runs)"
      ~header:[ "workload"; "static 50%"; "dynamic"; "improvement" ]
      rows

(* §7.3 future work: size-segregated H2 placement. Large dead arrays no
   longer pin regions of small live objects, so more regions reclaim and
   less space is wasted (the BFS/SSSP pattern of Figure 10). *)
let size_segregated_placement b =
  let cell p placement () =
    let cfg = { H2.default_config with H2.placement } in
    let r = run_giraph ~h2_config:cfg G_th p in
    match r.Run_result.h2_stats with
    | Some s ->
        Printf.sprintf "%d/%d (waste %s)" s.H2.regions_reclaimed
          s.H2.regions_allocated
          (Th_sim.Size.to_string s.H2.wasted_bytes)
    | None -> "OOM"
  in
  let groups =
    Plan.grouped_costed b ~label:"extras/placement"
      (List.map
         (fun (p : Giraph_profiles.t) ->
           let c = giraph_cost p in
           (p, [ (c, cell p H2.Label_only); (c, cell p H2.Size_segregated) ]))
         [ Giraph_profiles.bfs; Giraph_profiles.sssp; Giraph_profiles.pagerank ])
  in
  fun () ->
    let rows =
      List.map
        (fun ((p : Giraph_profiles.t), results) ->
          let lo, ss = pair2 ~what:"extras:layout" results in
          [ p.Giraph_profiles.name; lo; ss ])
        (Plan.get groups)
    in
    Report.print_series
      ~title:
        "§7.3 extension: label-only vs size-segregated placement        (reclaimed/allocated regions)"
      ~header:[ "workload"; "label-only"; "size-segregated" ]
      rows

(* Synthetic X -> Y -> Z region chain (the exact example of §3.3): three
   labelled groups where X references Y references Z, and only Z stays
   referenced from H1. Directed dependency lists reclaim X and Y;
   Union-Find region groups keep the whole group alive. *)
let synthetic_chain_ablation b =
  let run reclaim_mode =
    let clock = Clock.create () in
    let costs = Setups.default_costs in
    let heap = Th_minijvm.H1_heap.create ~heap_bytes:(Size.mib 16) () in
    let device = Th_device.Device.create clock Th_device.Device.Nvme_ssd in
    let h2 =
      H2.create
        ~config:{ H2.default_config with H2.reclaim_mode }
        ~clock ~costs ~device ~dr2_bytes:(Size.mib 4) ()
    in
    let rt = Runtime.create ~h2 ~clock ~costs ~heap () in
    let anchor = Runtime.alloc rt ~size:64 () in
    Runtime.add_root rt anchor;
    let group label =
      let root = Runtime.alloc rt ~size:128 () in
      Runtime.write_ref rt anchor root;
      for _ = 1 to 64 do
        let e = Runtime.alloc rt ~size:2048 () in
        Runtime.write_ref rt root e
      done;
      Runtime.h2_tag_root rt root ~label;
      Runtime.h2_move rt ~label;
      root
    in
    let x = group 1 and y = group 2 and z = group 3 in
    Runtime.major_gc rt;
    (* Cross-region chain: X -> Y -> Z. *)
    Runtime.write_ref rt x y;
    Runtime.write_ref rt y z;
    (* Drop the H1 references to X and Y; only Z stays reachable. *)
    Runtime.unlink_ref rt anchor x;
    Runtime.unlink_ref rt anchor y;
    Runtime.major_gc rt;
    Runtime.major_gc rt;
    (H2.stats h2).H2.regions_reclaimed
  in
  let cells =
    Plan.cell_list b ~label:"extras/chain"
      [
        (fun () -> run H2.Dependency_lists); (fun () -> run H2.Region_groups);
      ]
  in
  fun () ->
    let dep, uf = pair2 ~what:"extras:chain" (Plan.get cells) in
    Report.print_series
      ~title:"§3.3 synthetic X->Y->Z chain: regions reclaimed with only Z live"
      ~header:[ "dependency lists"; "union-find groups" ]
      [ [ string_of_int dep; string_of_int uf ] ]

(* Synthetic mixed-size group (the Figure-10 BFS/SSSP pattern): one label
   holding many small long-lived objects and several large arrays that
   die early. Label-only placement interleaves them, so the dead arrays'
   space stays pinned by the live smalls; size-segregated placement puts
   the arrays in their own regions, which reclaim in bulk. *)
let synthetic_placement_ablation b =
  let run placement =
    let clock = Clock.create () in
    let costs = Setups.default_costs in
    let heap = Th_minijvm.H1_heap.create ~heap_bytes:(Size.mib 64) () in
    let device = Th_device.Device.create clock Th_device.Device.Nvme_ssd in
    let h2 =
      H2.create
        ~config:
          { H2.default_config with H2.placement; region_size = Size.kib 512 }
        ~clock ~costs ~device ~dr2_bytes:(Size.mib 4) ()
    in
    let rt = Runtime.create ~h2 ~clock ~costs ~heap () in
    let anchor = Runtime.alloc rt ~size:64 () in
    Runtime.add_root rt anchor;
    (* Interleaved independent key-objects sharing one label, as Giraph
       tags per-vertex edge maps and per-partition message chunks: small
       groups that stay live alternating with large arrays that die. *)
    let larges = ref [] in
    for _ = 1 to 20 do
      let group = Runtime.alloc rt ~size:128 () in
      Runtime.write_ref rt anchor group;
      for _ = 1 to 20 do
        let small = Runtime.alloc rt ~size:512 () in
        Runtime.write_ref rt group small
      done;
      Runtime.h2_tag_root rt group ~label:1;
      let large =
        Runtime.alloc rt ~kind:Th_objmodel.Heap_object.Array_data
          ~size:(Size.kib 192) ()
      in
      Runtime.write_ref rt anchor large;
      Runtime.h2_tag_root rt large ~label:1;
      larges := large :: !larges
    done;
    Runtime.h2_move rt ~label:1;
    Runtime.major_gc rt;
    (* The large arrays die; the small groups stay live. *)
    List.iter (fun l -> Runtime.unlink_ref rt anchor l) !larges;
    Runtime.major_gc rt;
    Runtime.major_gc rt;
    let st = H2.stats h2 in
    (st.H2.regions_reclaimed, st.H2.used_bytes)
  in
  let cells =
    Plan.cell_list b ~label:"extras/mixed-size"
      [ (fun () -> run H2.Label_only); (fun () -> run H2.Size_segregated) ]
  in
  fun () ->
    let (lo_r, lo_b), (ss_r, ss_b) =
      pair2 ~what:"extras:mixed-size" (Plan.get cells)
    in
    Report.print_series
      ~title:
        "§7.3 synthetic mixed-size group: dead 192KiB arrays inside a live        label"
      ~header:[ "placement"; "regions reclaimed"; "H2 bytes still used" ]
      [
        [ "label-only"; string_of_int lo_r; Th_sim.Size.to_string lo_b ];
        [ "size-segregated"; string_of_int ss_r; Th_sim.Size.to_string ss_b ];
      ]

let plan () =
  let b = Plan.create () in
  let r1 = barrier_overhead b in
  let r2 = ablation_union_find b in
  let r3 = synthetic_chain_ablation b in
  let r4 = g1_with_teraheap b in
  let r5 = dynamic_thresholds b in
  let r6 = size_segregated_placement b in
  let r7 = synthetic_placement_ablation b in
  Plan.seal b ~render:(fun () ->
      r1 ();
      r2 ();
      r3 ();
      r4 ();
      r5 ();
      r6 ();
      r7 ())
